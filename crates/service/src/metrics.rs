//! Aggregate service metrics, reported by the `stats` request.

use crate::cache::CacheStats;
use photomosaic::{GenerationReport, Json};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

#[derive(Clone, Debug, Default)]
struct Inner {
    submitted: u64,
    completed: u64,
    rejected: u64,
    failed: u64,
    in_flight: u64,
    queue_wait: Duration,
    step1_wall: Duration,
    step2_wall: Duration,
    step3_wall: Duration,
}

/// Counters and accumulated timings across the server's lifetime.
#[derive(Default)]
pub struct ServiceMetrics {
    inner: Mutex<Inner>,
}

impl ServiceMetrics {
    /// Fresh zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// A job was accepted into the queue.
    pub fn job_submitted(&self) {
        self.lock().submitted += 1;
    }

    /// A job was refused because the queue was full.
    pub fn job_rejected(&self) {
        self.lock().rejected += 1;
    }

    /// A worker picked a job up after waiting `queue_wait` in the queue.
    pub fn job_started(&self, queue_wait: Duration) {
        let mut inner = self.lock();
        inner.in_flight += 1;
        inner.queue_wait += queue_wait;
    }

    /// A job finished successfully; fold its step timings in.
    pub fn job_completed(&self, report: &GenerationReport) {
        let mut inner = self.lock();
        inner.in_flight = inner.in_flight.saturating_sub(1);
        inner.completed += 1;
        inner.step1_wall += report.step1_wall;
        inner.step2_wall += report.step2_wall;
        inner.step3_wall += report.step3_wall;
    }

    /// A job failed after being picked up.
    pub fn job_failed(&self) {
        let mut inner = self.lock();
        inner.in_flight = inner.in_flight.saturating_sub(1);
        inner.failed += 1;
    }

    /// Jobs currently being executed by workers.
    pub fn in_flight(&self) -> u64 {
        self.lock().in_flight
    }

    /// Total jobs refused with a retry-after rejection.
    pub fn rejected(&self) -> u64 {
        self.lock().rejected
    }

    /// Snapshot as the `stats` response payload. `queue_len`/`capacity`
    /// and the cache counters are sampled by the caller so this module
    /// stays independent of the queue and cache types.
    pub fn snapshot(
        &self,
        workers: usize,
        queue_len: usize,
        queue_capacity: usize,
        cache: CacheStats,
        cache_capacity: usize,
    ) -> Json {
        let inner = self.lock().clone();
        let ms = |d: Duration| Json::from(d.as_secs_f64() * 1000.0);
        Json::obj([
            ("workers", Json::from(workers)),
            (
                "jobs",
                Json::obj([
                    ("submitted", Json::from(inner.submitted)),
                    ("completed", Json::from(inner.completed)),
                    ("rejected", Json::from(inner.rejected)),
                    ("failed", Json::from(inner.failed)),
                    ("in_flight", Json::from(inner.in_flight)),
                ]),
            ),
            (
                "queue",
                Json::obj([
                    ("length", Json::from(queue_len)),
                    ("capacity", Json::from(queue_capacity)),
                    ("wait_ms_total", ms(inner.queue_wait)),
                ]),
            ),
            (
                "cache",
                Json::obj([
                    ("hits", Json::from(cache.hits)),
                    ("misses", Json::from(cache.misses)),
                    ("entries", Json::from(cache.entries)),
                    ("capacity", Json::from(cache_capacity)),
                ]),
            ),
            (
                "walls",
                Json::obj([
                    ("step1_ms_total", ms(inner.step1_wall)),
                    ("step2_ms_total", ms(inner.step2_wall)),
                    ("step3_ms_total", ms(inner.step3_wall)),
                ]),
            ),
        ])
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photomosaic::MosaicBuilder;

    fn report(step2_ms: u64) -> GenerationReport {
        GenerationReport {
            config: MosaicBuilder::new().grid(2).build(),
            image_size: 8,
            tile_count: 4,
            tile_size: 4,
            total_error: 1,
            sweeps: 1,
            swaps: 0,
            step1_wall: Duration::from_millis(1),
            step2_wall: Duration::from_millis(step2_ms),
            step3_wall: Duration::from_millis(2),
            step2_profile: Default::default(),
            step3_profile: Default::default(),
        }
    }

    #[test]
    fn lifecycle_counters() {
        let m = ServiceMetrics::new();
        m.job_submitted();
        m.job_submitted();
        m.job_rejected();
        m.job_started(Duration::from_millis(10));
        assert_eq!(m.in_flight(), 1);
        m.job_completed(&report(5));
        assert_eq!(m.in_flight(), 0);
        m.job_started(Duration::from_millis(20));
        m.job_failed();
        assert_eq!(m.in_flight(), 0);
        assert_eq!(m.rejected(), 1);

        let snap = m.snapshot(3, 1, 8, CacheStats::default(), 4);
        let jobs = snap.get("jobs").unwrap();
        assert_eq!(jobs.get("submitted").unwrap().as_u64(), Some(2));
        assert_eq!(jobs.get("completed").unwrap().as_u64(), Some(1));
        assert_eq!(jobs.get("rejected").unwrap().as_u64(), Some(1));
        assert_eq!(jobs.get("failed").unwrap().as_u64(), Some(1));
        assert_eq!(jobs.get("in_flight").unwrap().as_u64(), Some(0));
        let queue = snap.get("queue").unwrap();
        assert_eq!(queue.get("capacity").unwrap().as_u64(), Some(8));
        assert_eq!(queue.get("wait_ms_total").unwrap().as_f64(), Some(30.0));
        let walls = snap.get("walls").unwrap();
        assert_eq!(walls.get("step2_ms_total").unwrap().as_f64(), Some(5.0));
        assert_eq!(snap.get("workers").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn snapshot_reflects_cache_counters() {
        let m = ServiceMetrics::new();
        let cache = CacheStats {
            hits: 7,
            misses: 3,
            entries: 2,
        };
        let snap = m.snapshot(1, 0, 4, cache, 16);
        let c = snap.get("cache").unwrap();
        assert_eq!(c.get("hits").unwrap().as_u64(), Some(7));
        assert_eq!(c.get("misses").unwrap().as_u64(), Some(3));
        assert_eq!(c.get("entries").unwrap().as_u64(), Some(2));
        assert_eq!(c.get("capacity").unwrap().as_u64(), Some(16));
    }
}
