//! A thin, audited epoll + eventfd shim for the event-driven front-end.
//!
//! The workspace is std-only and offline, so there is no `libc` crate to
//! lean on; this module is the one place the service crate talks to the
//! kernel directly. The surface is deliberately tiny — five syscalls
//! (`epoll_create1`, `epoll_ctl`, `epoll_wait`, `eventfd2`, `close`,
//! plus `read`/`write` on the eventfd) wrapped behind two safe types:
//!
//! * [`Poller`] — owns an epoll instance; registers/modifies/removes
//!   file descriptors (obtained from `std::os::fd::AsRawFd` on std
//!   sockets) and waits for readiness, translating `epoll_event` masks
//!   into the [`Readiness`] struct the event loop consumes.
//! * [`EventWaker`] — an eventfd the worker pool and `begin_shutdown`
//!   write to from other threads to pull the loop out of `epoll_wait`.
//!
//! SAFETY obligations (see DESIGN.md §17): every pointer handed to the
//! kernel refers to a live, correctly-sized stack location for the
//! duration of the call; file descriptors are owned by exactly one
//! wrapper and closed exactly once in `Drop`; and the x86_64 syscall
//! ABI (arguments in rdi/rsi/rdx/r10, number in rax, rcx/r11 clobbered)
//! is encoded once in [`syscall4`] and nowhere else.

use std::io;
use std::os::fd::RawFd;

// x86_64 Linux syscall numbers.
const SYS_READ: usize = 0;
const SYS_WRITE: usize = 1;
const SYS_CLOSE: usize = 3;
const SYS_EPOLL_WAIT: usize = 232;
const SYS_EPOLL_CTL: usize = 233;
const SYS_EVENTFD2: usize = 290;
const SYS_EPOLL_CREATE1: usize = 291;

const EPOLL_CLOEXEC: usize = 0o2000000;
const EFD_CLOEXEC: usize = 0o2000000;
const EFD_NONBLOCK: usize = 0o4000;

const EPOLL_CTL_ADD: usize = 1;
const EPOLL_CTL_DEL: usize = 2;
const EPOLL_CTL_MOD: usize = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

/// How many kernel events one `epoll_wait` may return. Readiness is
/// level-triggered, so anything beyond this batch is simply reported on
/// the next wait.
const MAX_EVENTS: usize = 256;

/// The kernel's `epoll_event` layout on x86_64: packed, 12 bytes.
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

/// Invoke a raw Linux syscall with up to four arguments, returning the
/// kernel's raw result (negative errno on failure).
///
/// # Safety
/// `nr` must name a syscall whose contract the arguments satisfy; any
/// argument interpreted as a pointer must reference live memory of the
/// size that syscall reads or writes, for the whole call.
// SAFETY: the asm block implements the documented x86_64 syscall ABI —
// number in rax, args in rdi/rsi/rdx/r10, result in rax, rcx and r11
// clobbered by the instruction — and touches nothing else.
unsafe fn syscall4(nr: usize, a1: usize, a2: usize, a3: usize, a4: usize) -> isize {
    let ret: isize;
    core::arch::asm!(
        "syscall",
        inlateout("rax") nr as isize => ret,
        in("rdi") a1,
        in("rsi") a2,
        in("rdx") a3,
        in("r10") a4,
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack),
    );
    ret
}

/// Map a raw syscall result onto `io::Result`, decoding negative errno.
fn check(ret: isize) -> io::Result<usize> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret as usize)
    }
}

/// Close a file descriptor owned by a shim wrapper.
fn close_fd(fd: RawFd) {
    // SAFETY: the fd was returned by a successful epoll_create1/eventfd2
    // and each wrapper closes its fd exactly once, from Drop; close
    // takes no pointers. A failed close is unrecoverable and ignored.
    let _ = unsafe { syscall4(SYS_CLOSE, fd as usize, 0, 0, 0) };
}

/// What one registered file descriptor is ready for.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Readiness {
    /// The token the fd was registered under.
    pub token: u64,
    /// Readable (`EPOLLIN`).
    pub readable: bool,
    /// Writable (`EPOLLOUT`).
    pub writable: bool,
    /// Peer hangup or error (`EPOLLHUP` / `EPOLLERR` / `EPOLLRDHUP`);
    /// reported even when the registration asked for no events.
    pub closed: bool,
}

/// An owned epoll instance.
pub(crate) struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// Create a fresh epoll instance (close-on-exec).
    pub fn new() -> io::Result<Poller> {
        // SAFETY: epoll_create1 takes one flags word and no pointers.
        let fd = check(unsafe { syscall4(SYS_EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0) })?;
        Ok(Poller { epfd: fd as RawFd })
    }

    fn ctl(&self, op: usize, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let ev = EpollEvent {
            events,
            data: token,
        };
        // SAFETY: `ev` is a live, correctly-laid-out epoll_event for the
        // whole call; the kernel copies it before epoll_ctl returns, and
        // for EPOLL_CTL_DEL a valid pointer is passed (pre-2.6.9 ABI).
        check(unsafe {
            syscall4(
                SYS_EPOLL_CTL,
                self.epfd as usize,
                op,
                fd as usize,
                std::ptr::addr_of!(ev) as usize,
            )
        })?;
        Ok(())
    }

    /// Register `fd` under `token` with the given interest. Hangup and
    /// error readiness is always reported regardless of interest.
    pub fn add(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest_mask(readable, writable), token)
    }

    /// Replace the interest set of an already-registered `fd`.
    pub fn modify(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest_mask(readable, writable), token)
    }

    /// Deregister `fd`. Harmless to call right before the fd is closed
    /// (closing would deregister implicitly; doing it explicitly keeps
    /// the kernel's interest list in step with the loop's own map).
    pub fn remove(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Wait up to `timeout_ms` (-1 = forever) and fill `out` with what
    /// became ready. An interrupted wait (`EINTR`) reports zero events
    /// rather than an error so callers simply loop.
    pub fn wait(&self, timeout_ms: i32, out: &mut Vec<Readiness>) -> io::Result<()> {
        out.clear();
        let mut events = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        // SAFETY: the buffer holds MAX_EVENTS epoll_event slots and
        // outlives the call; the kernel writes at most MAX_EVENTS
        // entries, as passed in the third argument.
        let waited = check(unsafe {
            syscall4(
                SYS_EPOLL_WAIT,
                self.epfd as usize,
                events.as_mut_ptr() as usize,
                MAX_EVENTS,
                timeout_ms as usize,
            )
        });
        let n = match waited {
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
            Err(e) => return Err(e),
        };
        for ev in events.iter().take(n) {
            // Copy out of the packed struct before touching the fields.
            let (mask, token) = (ev.events, ev.data);
            out.push(Readiness {
                token,
                readable: mask & EPOLLIN != 0,
                writable: mask & EPOLLOUT != 0,
                closed: mask & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
            });
        }
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        close_fd(self.epfd);
    }
}

fn interest_mask(readable: bool, writable: bool) -> u32 {
    // EPOLLRDHUP is always on so the loop hears about a peer half-close
    // even while reads are paused (a job in flight on that connection).
    let mut mask = EPOLLRDHUP;
    if readable {
        mask |= EPOLLIN;
    }
    if writable {
        mask |= EPOLLOUT;
    }
    mask
}

/// A nonblocking eventfd other threads write to to wake the event loop
/// out of `epoll_wait`. Register [`fd`](EventWaker::fd) with the poller
/// and [`drain`](EventWaker::drain) on readiness.
pub(crate) struct EventWaker {
    fd: RawFd,
}

impl EventWaker {
    /// Create the eventfd (close-on-exec, nonblocking).
    pub fn new() -> io::Result<EventWaker> {
        // SAFETY: eventfd2 takes an initial counter and a flags word,
        // no pointers.
        let fd = check(unsafe { syscall4(SYS_EVENTFD2, 0, EFD_CLOEXEC | EFD_NONBLOCK, 0, 0) })?;
        Ok(EventWaker { fd: fd as RawFd })
    }

    /// The fd to register for read readiness.
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Make the next (or current) `epoll_wait` on the registered poller
    /// return. Safe to call from any thread, any number of times.
    pub fn wake(&self) {
        let one: u64 = 1;
        // SAFETY: writes exactly 8 bytes from a live stack u64, the size
        // eventfd requires. EAGAIN (counter saturated) means a wake-up
        // is already pending, which is all this call promises.
        let _ = unsafe {
            syscall4(
                SYS_WRITE,
                self.fd as usize,
                std::ptr::addr_of!(one) as usize,
                8,
                0,
            )
        };
    }

    /// Reset the counter so the level-triggered poller stops reporting
    /// the waker readable. Called by the loop after each wake-up.
    pub fn drain(&self) {
        let mut counter: u64 = 0;
        // SAFETY: reads exactly 8 bytes into a live stack u64, the size
        // eventfd produces. EAGAIN (nothing pending) is fine.
        let _ = unsafe {
            syscall4(
                SYS_READ,
                self.fd as usize,
                std::ptr::addr_of_mut!(counter) as usize,
                8,
                0,
            )
        };
    }
}

impl Drop for EventWaker {
    fn drop(&mut self) {
        close_fd(self.fd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn waker_readiness_round_trip() {
        let poller = Poller::new().unwrap();
        let waker = EventWaker::new().unwrap();
        poller.add(waker.fd(), 7, true, false).unwrap();

        let mut out = Vec::new();
        poller.wait(0, &mut out).unwrap();
        assert!(out.is_empty(), "nothing is ready before a wake");

        waker.wake();
        waker.wake(); // coalesces: still one readiness report
        poller.wait(1000, &mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].token, 7);
        assert!(out[0].readable);
        assert!(!out[0].writable);

        waker.drain();
        poller.wait(0, &mut out).unwrap();
        assert!(out.is_empty(), "drained waker is quiet again");
    }

    #[test]
    fn socket_readable_and_interest_changes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller
            .add(server_side.as_raw_fd(), 42, true, false)
            .unwrap();

        let mut out = Vec::new();
        poller.wait(0, &mut out).unwrap();
        assert!(out.is_empty());

        client.write_all(b"hi").unwrap();
        poller.wait(1000, &mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].token, 42);
        assert!(out[0].readable);

        // Pause read interest: pending bytes no longer wake the poller.
        poller
            .modify(server_side.as_raw_fd(), 42, false, false)
            .unwrap();
        poller.wait(0, &mut out).unwrap();
        assert!(out.is_empty(), "read interest paused");

        // A vanished peer is reported even with reads paused.
        drop(client);
        poller.wait(1000, &mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out[0].closed, "{:?}", out[0]);

        poller.remove(server_side.as_raw_fd()).unwrap();
        poller.wait(0, &mut out).unwrap();
        assert!(out.is_empty(), "deregistered fd is silent");
    }

    #[test]
    fn writable_is_reported_for_an_empty_send_buffer() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        client.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(client.as_raw_fd(), 1, false, true).unwrap();
        let mut out = Vec::new();
        poller.wait(1000, &mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out[0].writable);
    }
}
