//! The connection gate: a lock-free concurrent-connection cap.
//!
//! Extracted from the server's accept loop so the gateway tier can
//! reuse the exact same admission discipline: claim a
//! [`ConnectionPermit`] before spawning a handler, answer `rejected`
//! and drop the socket when the gate is full, and let the permit's
//! `Drop` release the slot no matter how the handler exits (including
//! a failed thread spawn, which drops the closure holding the permit).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A concurrent-connection cap. `limit == 0` means unlimited, but
/// active connections are still counted (useful for introspection).
/// Cloning shares the count, so an accept loop and its metrics reader
/// observe the same gate.
#[derive(Clone, Debug, Default)]
pub struct ConnectionGate {
    active: Arc<AtomicUsize>,
    limit: usize,
}

impl ConnectionGate {
    /// A gate admitting at most `limit` concurrent holders
    /// (0 = unlimited).
    pub fn new(limit: usize) -> ConnectionGate {
        ConnectionGate {
            active: Arc::new(AtomicUsize::new(0)),
            limit,
        }
    }

    /// Claim a slot, or `None` when the gate is at its limit.
    pub fn try_acquire(&self) -> Option<ConnectionPermit> {
        let mut current = self.active.load(Ordering::SeqCst);
        loop {
            if self.limit != 0 && current >= self.limit {
                return None;
            }
            match self.active.compare_exchange(
                current,
                current + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => {
                    return Some(ConnectionPermit {
                        active: Arc::clone(&self.active),
                    })
                }
                Err(actual) => current = actual,
            }
        }
    }

    /// Permits currently held.
    pub fn active(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// The configured cap (0 = unlimited).
    pub fn limit(&self) -> usize {
        self.limit
    }
}

/// RAII slot in a [`ConnectionGate`]; dropping it releases the slot.
#[derive(Debug)]
pub struct ConnectionPermit {
    active: Arc<AtomicUsize>,
}

impl Drop for ConnectionPermit {
    fn drop(&mut self) {
        self.active.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_caps_and_releases() {
        let gate = ConnectionGate::new(2);
        let a = gate.try_acquire().unwrap();
        let _b = gate.try_acquire().unwrap();
        assert!(gate.try_acquire().is_none(), "gate is full");
        assert_eq!(gate.active(), 2);
        drop(a);
        assert_eq!(gate.active(), 1);
        assert!(gate.try_acquire().is_some(), "slot was released");
    }

    #[test]
    fn zero_limit_is_unlimited_but_counted() {
        let gate = ConnectionGate::new(0);
        let permits: Vec<ConnectionPermit> =
            (0..100).map(|_| gate.try_acquire().unwrap()).collect();
        assert_eq!(gate.active(), 100);
        assert_eq!(gate.limit(), 0);
        drop(permits);
        assert_eq!(gate.active(), 0);
    }

    #[test]
    fn clones_share_the_count() {
        let gate = ConnectionGate::new(1);
        let clone = gate.clone();
        let _held = gate.try_acquire().unwrap();
        assert!(clone.try_acquire().is_none());
        assert_eq!(clone.active(), 1);
    }

    #[test]
    fn contended_gate_never_oversubscribes() {
        let gate = ConnectionGate::new(8);
        let admitted = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..16)
            .map(|_| {
                let gate = gate.clone();
                let admitted = Arc::clone(&admitted);
                let peak = Arc::clone(&peak);
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        if let Some(permit) = gate.try_acquire() {
                            admitted.fetch_add(1, Ordering::SeqCst);
                            peak.fetch_max(gate.active(), Ordering::SeqCst);
                            drop(permit);
                        }
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert!(admitted.load(Ordering::SeqCst) > 0);
        assert!(peak.load(Ordering::SeqCst) <= 8, "cap was never exceeded");
        assert_eq!(gate.active(), 0, "every permit was released");
    }
}
