//! Event-driven connection front-end: one thread, every socket.
//!
//! The readiness loop owns the listener and all client sockets. It
//! performs bounded incremental framing on per-connection buffers
//! ([`crate::protocol::FrameAccumulator`], enforcing `max_frame_bytes`
//! before any copy), hands complete jobs to the worker pool, and writes
//! responses back when the socket reports writable. Workers never touch
//! a socket: they post finished replies on the [`CompletionBoard`] and
//! nudge the loop through its eventfd waker.
//!
//! Connection lifecycle is level-triggered epoll. Read interest is
//! dropped while a job is in flight for a connection (one job at a time
//! per client, matching the threaded oracle's request/response rhythm)
//! and restored when the reply has been queued. Write interest exists
//! only while the outbound buffer is non-empty, so an idle connection
//! costs a hash-map entry and a kernel watch — no thread, no stack.
//!
//! Shutdown is observed as a flag plus a waker nudge: the loop closes
//! the listener immediately (later connects are refused) and keeps
//! serving already-open connections for a short linger, mirroring the
//! threaded front-end where handler threads outlive the accept loop.
//! Connections with a job still in flight are kept past the linger
//! until their reply is delivered, so queued work drains observably.

use crate::epoll::{EventWaker, Poller, Readiness};
use crate::gate::ConnectionPermit;
use crate::protocol::{FrameAccumulator, ReadError, Request, Response};
use crate::queue::PushError;
use crate::server::{dispatch_request, Dispatch, Job, JobPayload, ReplyTo, Shared, WorkerReply};
use mosaic_telemetry::lock_unpoisoned;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Token for the listening socket.
const LISTENER_TOKEN: u64 = 0;
/// Token for the completion board's eventfd waker.
const WAKER_TOKEN: u64 = 1;
/// First token handed to a client connection.
const FIRST_CONN_TOKEN: u64 = 2;
/// How long after shutdown is observed the loop keeps serving open
/// connections, so clients that raced the shutdown still get typed
/// answers (the threaded oracle's handler threads give the same grace).
const SHUTDOWN_LINGER: Duration = Duration::from_millis(200);
/// Read chunk size per `read(2)` call on a ready socket.
const READ_CHUNK: usize = 8 * 1024;
/// Ceiling on a single poll sleep, so clock math stays in `i32` range.
const MAX_POLL_MS: u64 = 60_000;

/// Where workers post finished jobs for the loop to pick up.
///
/// `deliver` is the only cross-thread hand-off in the event-driven
/// front-end: push the reply under the mutex, release it, then wake the
/// eventfd. The wake happens strictly after the unlock so the loop never
/// contends with a waker that is still holding the list.
pub(crate) struct CompletionBoard {
    done: Mutex<Vec<(u64, WorkerReply)>>,
    waker: EventWaker,
}

impl CompletionBoard {
    /// Wrap an eventfd waker into a shareable board.
    pub(crate) fn new(waker: EventWaker) -> Arc<CompletionBoard> {
        Arc::new(CompletionBoard {
            done: Mutex::new(Vec::new()),
            waker,
        })
    }

    /// The waker's file descriptor, for registration with the poller.
    pub(crate) fn waker_fd(&self) -> std::os::fd::RawFd {
        self.waker.fd()
    }

    /// Post one finished job and wake the loop. Called from workers.
    pub(crate) fn deliver(&self, token: u64, reply: WorkerReply) {
        let mut done = lock_unpoisoned(&self.done);
        done.push((token, reply));
        drop(done);
        self.waker.wake();
    }

    /// Wake the loop without posting a completion (shutdown nudge).
    pub(crate) fn wake(&self) {
        self.waker.wake();
    }

    /// Reset the eventfd counter after its readiness fired.
    fn drain_waker(&self) {
        self.waker.drain();
    }

    /// Take everything posted since the last call.
    fn take_completions(&self) -> Vec<(u64, WorkerReply)> {
        std::mem::take(&mut *lock_unpoisoned(&self.done))
    }
}

/// Per-connection state owned by the loop.
struct Conn {
    stream: TcpStream,
    /// `None` for a doomed over-capacity connection that only exists to
    /// flush its rejection line; dropping the permit frees a gate slot.
    permit: Option<ConnectionPermit>,
    frames: FrameAccumulator,
    /// Outbound bytes not yet accepted by the kernel.
    out: Vec<u8>,
    out_from: usize,
    /// Close once `out` is fully flushed (rejections, framing errors,
    /// post-shutdown linger expiry).
    close_after_flush: bool,
    /// A job is in flight for this connection; reads are paused.
    busy: bool,
    /// Framing trust is lost: stop reading, flush what is queued.
    dead_input: bool,
    last_activity: Instant,
    /// Interest currently registered with the poller, to skip
    /// redundant `EPOLL_CTL_MOD` calls.
    interest: (bool, bool),
}

impl Conn {
    fn pending_out(&self) -> bool {
        self.out_from < self.out.len()
    }

    fn wants_read(&self) -> bool {
        !self.busy && !self.dead_input && !self.close_after_flush
    }
}

/// Run the event-driven front-end until shutdown has drained. Consumes
/// the (already nonblocking) listener; the poller and board were built
/// by `Server::start` so their creation errors surface to the caller.
pub(crate) fn run(
    listener: TcpListener,
    poller: Poller,
    board: Arc<CompletionBoard>,
    shared: Arc<Shared>,
) {
    if poller
        .add(listener.as_raw_fd(), LISTENER_TOKEN, true, false)
        .is_err()
        || poller
            .add(board.waker_fd(), WAKER_TOKEN, true, false)
            .is_err()
    {
        // Without a working poller the server cannot serve; go dark the
        // visible way (listener drops, connects are refused) instead of
        // hanging silently.
        shared.begin_shutdown();
        return;
    }
    let mut driver = EventLoop {
        shared,
        poller,
        board,
        listener: Some(listener),
        conns: HashMap::new(),
        next_token: FIRST_CONN_TOKEN,
        drain_deadline: None,
    };
    driver.run();
}

struct EventLoop {
    shared: Arc<Shared>,
    poller: Poller,
    board: Arc<CompletionBoard>,
    /// Dropped (closing the socket) the moment shutdown is observed.
    listener: Option<TcpListener>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    /// Set when shutdown is observed: serve open connections until this
    /// instant, then force the stragglers out.
    drain_deadline: Option<Instant>,
}

impl EventLoop {
    fn run(&mut self) {
        let mut events: Vec<Readiness> = Vec::new();
        loop {
            let timeout = self.poll_timeout(Instant::now());
            if self.poller.wait(timeout, &mut events).is_err() {
                // An unusable poller is unrecoverable; drain and exit.
                self.shared.begin_shutdown();
            }
            self.shared.metrics.io_loop_wakeup();
            let now = Instant::now();
            for &ev in &events {
                match ev.token {
                    WAKER_TOKEN => self.board.drain_waker(),
                    LISTENER_TOKEN => self.accept_ready(now),
                    token => self.conn_ready(token, ev, now),
                }
            }
            self.apply_completions(now);
            self.observe_shutdown(now);
            self.sweep_idle(now);
            if self.drain_deadline.is_some_and(|d| Instant::now() >= d) && self.conns.is_empty() {
                break;
            }
        }
    }

    /// How long the next `epoll_wait` may sleep: until the nearest idle
    /// deadline among readable connections, or the shutdown linger,
    /// whichever is sooner; forever when nothing is timed.
    fn poll_timeout(&self, now: Instant) -> i32 {
        let mut next_ms: Option<u64> = None;
        let mut consider = |ms: u64| {
            next_ms = Some(next_ms.map_or(ms, |cur| cur.min(ms)));
        };
        if let Some(deadline) = self.drain_deadline {
            if now < deadline {
                consider(millis_until(deadline, now));
            }
            // Past the linger the loop is purely event-driven: stray
            // connections are closed by completions or writability.
        }
        if let Some(io_timeout) = self.shared.io_timeout() {
            for conn in self.conns.values() {
                if conn.busy {
                    continue; // in-flight jobs answer to the job deadline
                }
                consider(millis_until(conn.last_activity + io_timeout, now));
            }
        }
        match next_ms {
            None => -1,
            // +1 rounds sub-millisecond remainders up, so the wake-up
            // lands past the deadline instead of spinning just short.
            Some(ms) => ms.saturating_add(1).min(MAX_POLL_MS) as i32,
        }
    }

    /// Accept until the backlog is dry. Over-capacity clients get the
    /// same typed rejection as the threaded front-end; the fault plan's
    /// sockopt failure drops them unanswered instead, mirroring how the
    /// oracle treats a write deadline it could not arm.
    fn accept_ready(&mut self, now: Instant) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if self.shared.shutdown.load(Ordering::SeqCst) {
                        continue; // raced shutdown: drop, listener closes below
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    match self.shared.gate.try_acquire() {
                        Some(permit) => self.register_conn(stream, permit, now),
                        None => self.reject_conn(stream, now),
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // Transient per-connection accept errors (ECONNABORTED
                // and friends): readiness will re-report anything real.
                Err(_) => return,
            }
        }
    }

    fn register_conn(&mut self, stream: TcpStream, permit: ConnectionPermit, now: Instant) {
        let token = self.next_token;
        self.next_token += 1;
        if self
            .poller
            .add(stream.as_raw_fd(), token, true, false)
            .is_err()
        {
            return; // drop: the client sees a clean close
        }
        self.conns.insert(
            token,
            Conn {
                stream,
                permit: Some(permit),
                frames: FrameAccumulator::new(self.shared.config.max_frame_bytes),
                out: Vec::new(),
                out_from: 0,
                close_after_flush: false,
                busy: false,
                dead_input: false,
                last_activity: now,
                interest: (true, false),
            },
        );
    }

    /// Over-capacity: queue the standard backpressure line on a doomed,
    /// never-read connection and close once it has flushed.
    fn reject_conn(&mut self, stream: TcpStream, now: Instant) {
        self.shared.metrics.connection_rejected();
        if self.shared.config.faults.take_reject_sockopt_failure() {
            return; // injected sockopt failure: fatal, drop unanswered
        }
        let mut conn = Conn {
            stream,
            permit: None,
            frames: FrameAccumulator::new(0),
            out: Vec::new(),
            out_from: 0,
            close_after_flush: true,
            busy: false,
            dead_input: true,
            last_activity: now,
            interest: (false, false),
        };
        push_response(
            &mut conn,
            &Response::Rejected {
                retry_after_ms: self.shared.config.retry_after_ms,
            },
        );
        if flush_conn(&mut conn, now).is_err() || !conn.pending_out() {
            return; // fully flushed (or dead): drop closes the socket
        }
        let token = self.next_token;
        self.next_token += 1;
        if self
            .poller
            .add(conn.stream.as_raw_fd(), token, false, true)
            .is_err()
        {
            return;
        }
        conn.interest = (false, true);
        self.conns.insert(token, conn);
    }

    /// One connection reported ready: flush first (frees buffer space
    /// and detects dead peers cheaply), then read and parse.
    fn conn_ready(&mut self, token: u64, ev: Readiness, now: Instant) {
        let mut alive = true;
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if ev.writable {
                alive = flush_conn(conn, now).is_ok();
            }
            if alive && (ev.readable || ev.closed) {
                if conn.wants_read() {
                    alive = read_into_conn(conn, token, &self.shared, &self.board, now);
                } else if ev.closed {
                    // Peer hung up while reads were paused (job in
                    // flight or doomed rejection): nobody is left to
                    // receive anything we would write.
                    alive = false;
                }
            }
        }
        self.settle(token, alive, now);
    }

    /// Apply the post-I/O disposition for one connection: close it, or
    /// reconcile its epoll interest with what it now wants.
    fn settle(&mut self, token: u64, alive: bool, _now: Instant) {
        let (close, want, fd) = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let close = !alive || (conn.close_after_flush && !conn.pending_out() && !conn.busy);
            (
                close,
                (conn.wants_read(), conn.pending_out()),
                conn.stream.as_raw_fd(),
            )
        };
        if close {
            self.close(token);
            return;
        }
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if want != conn.interest {
            if self.poller.modify(fd, token, want.0, want.1).is_ok() {
                conn.interest = want;
            } else {
                self.close(token);
            }
        }
    }

    /// Deliver finished jobs: un-pause the connection, queue the reply,
    /// and resume parsing any frames that arrived while it was busy.
    fn apply_completions(&mut self, now: Instant) {
        for (token, reply) in self.board.take_completions() {
            match reply {
                WorkerReply::Sever => self.close(token),
                WorkerReply::Respond(response) => {
                    let alive = {
                        let Some(conn) = self.conns.get_mut(&token) else {
                            continue;
                        };
                        conn.busy = false;
                        conn.last_activity = now;
                        push_response(conn, &response);
                        advance_frames(conn, token, &self.shared, &self.board, now)
                            && flush_conn(conn, now).is_ok()
                    };
                    self.settle(token, alive, now);
                }
            }
        }
    }

    /// First shutdown observation closes the listener and starts the
    /// linger; once the linger expires, connections stop being read and
    /// everything idle is dropped. Busy connections stay until their
    /// reply lands, so accepted work drains observably.
    fn observe_shutdown(&mut self, now: Instant) {
        if self.drain_deadline.is_none() && self.shared.shutdown.load(Ordering::SeqCst) {
            if let Some(listener) = self.listener.take() {
                let _ = self.poller.remove(listener.as_raw_fd());
                // dropping the listener closes it: connects now refused
            }
            self.drain_deadline = Some(now + SHUTDOWN_LINGER);
        }
        let Some(deadline) = self.drain_deadline else {
            return;
        };
        if now < deadline {
            return;
        }
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.dead_input = true;
                conn.close_after_flush = true;
            }
            self.settle(token, true, now);
        }
    }

    /// Close connections idle past the I/O timeout — the slowloris
    /// defense the threaded front-end gets from `set_read_timeout`.
    fn sweep_idle(&mut self, now: Instant) {
        let Some(io_timeout) = self.shared.io_timeout() else {
            return;
        };
        let expired: Vec<(u64, bool)> = self
            .conns
            .iter()
            .filter(|(_, c)| !c.busy && now.duration_since(c.last_activity) >= io_timeout)
            .map(|(&t, c)| (t, c.permit.is_some() && !c.close_after_flush))
            .collect();
        for (token, counted) in expired {
            if counted {
                self.shared.metrics.connection_timed_out();
            }
            self.close(token);
        }
    }

    fn close(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.remove(conn.stream.as_raw_fd());
            // dropping `conn` closes the socket and releases the permit
        }
    }
}

/// Drain readable bytes into the connection's frame accumulator and act
/// on every complete frame. Returns `false` when the connection is dead
/// (EOF, I/O error) and must be closed without further ceremony.
fn read_into_conn(
    conn: &mut Conn,
    token: u64,
    shared: &Arc<Shared>,
    board: &Arc<CompletionBoard>,
    now: Instant,
) -> bool {
    let mut buf = [0u8; READ_CHUNK];
    while conn.wants_read() {
        match conn.stream.read(&mut buf) {
            Ok(0) => return false, // orderly EOF
            Ok(n) => {
                conn.last_activity = now;
                match conn.frames.extend(&buf[..n]) {
                    Ok(()) => {
                        if !advance_frames(conn, token, shared, board, now) {
                            return false;
                        }
                    }
                    Err(ReadError::FrameTooLarge { limit }) => {
                        // Same shape and same close-after-answer policy
                        // as the threaded front-end's oversized path.
                        shared.metrics.frame_too_large();
                        push_response(
                            conn,
                            &Response::FrameTooLarge {
                                max_frame_bytes: limit as u64,
                            },
                        );
                        conn.dead_input = true;
                        conn.close_after_flush = true;
                    }
                    Err(_) => return false,
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    // Optimistically flush whatever the frames produced; most replies
    // fit the socket buffer and never need write interest at all.
    flush_conn(conn, now).is_ok()
}

/// Parse and dispatch every complete frame buffered on the connection,
/// stopping when a job goes in flight (reads pause until it returns).
fn advance_frames(
    conn: &mut Conn,
    token: u64,
    shared: &Arc<Shared>,
    board: &Arc<CompletionBoard>,
    now: Instant,
) -> bool {
    while !conn.busy && !conn.close_after_flush {
        let message = match conn.frames.next_message() {
            Ok(Some(message)) => message,
            Ok(None) => break,
            Err(ReadError::Malformed(problem)) => {
                // Framing trust is lost: answer, then drop — exactly
                // the threaded front-end's malformed-line policy.
                push_response(conn, &Response::Error { message: problem });
                conn.dead_input = true;
                conn.close_after_flush = true;
                break;
            }
            Err(_) => return false,
        };
        conn.last_activity = now;
        let inline = match Request::from_json(&message) {
            // An unknown op is a per-request error; the connection
            // stays usable (oracle parity: its loop continues).
            Err(problem) => Some(Response::Error { message: problem }),
            Ok(request) => match dispatch_request(request, shared) {
                Dispatch::Inline(response) => Some(response),
                Dispatch::Enqueue(payload) => enqueue(conn, token, payload, shared, board),
            },
        };
        if let Some(response) = inline {
            push_response(conn, &response);
        }
    }
    true
}

/// Try to queue a job for the workers. `None` means the job is in
/// flight and the connection is now busy; `Some` is the inline answer
/// for a queue that is full or closed.
fn enqueue(
    conn: &mut Conn,
    token: u64,
    payload: JobPayload,
    shared: &Arc<Shared>,
    board: &Arc<CompletionBoard>,
) -> Option<Response> {
    let job = Job {
        payload,
        accepted_at: Instant::now(),
        reply: ReplyTo::Board {
            token,
            board: Arc::clone(board),
        },
    };
    match shared.queue.try_push(job) {
        Ok(()) => {
            shared.metrics.job_submitted();
            conn.busy = true;
            None
        }
        Err(PushError::Full(_)) => {
            shared.metrics.job_rejected();
            Some(Response::Rejected {
                retry_after_ms: shared.config.retry_after_ms,
            })
        }
        Err(PushError::Closed(_)) => Some(Response::Error {
            message: "server is shutting down".to_string(),
        }),
    }
}

/// Encode one response line into the connection's outbound buffer.
fn push_response(conn: &mut Conn, response: &Response) {
    let mut line = response.to_json().encode();
    line.push('\n');
    conn.out.extend_from_slice(line.as_bytes());
}

/// Write as much buffered output as the kernel will take. `Err` means
/// the connection is dead. Fully flushed buffers are reset so a
/// long-lived connection does not accrete capacity.
fn flush_conn(conn: &mut Conn, now: Instant) -> Result<(), ()> {
    while conn.pending_out() {
        match conn.stream.write(&conn.out[conn.out_from..]) {
            Ok(0) => return Err(()),
            Ok(n) => {
                conn.out_from += n;
                conn.last_activity = now;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(()),
        }
    }
    conn.out.clear();
    conn.out_from = 0;
    Ok(())
}

/// Whole milliseconds until `deadline`, saturating at zero.
fn millis_until(deadline: Instant, now: Instant) -> u64 {
    u64::try_from(deadline.saturating_duration_since(now).as_millis()).unwrap_or(u64::MAX)
}
