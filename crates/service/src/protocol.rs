//! The wire protocol: line-delimited JSON over TCP.
//!
//! Each request and each response is one JSON object on one line,
//! terminated by `\n` (no newlines inside a message — the std-only
//! encoder in `photomosaic::json` never emits any). A connection may
//! carry any number of request/response pairs, in order.
//!
//! Requests (`"op"` selects the operation):
//!
//! ```json
//! {"op":"submit","job":{"input":{...},"target":{...},"config":{...}}}
//! {"op":"stats"}
//! {"op":"metrics"}
//! {"op":"ping"}
//! {"op":"shutdown"}
//! ```
//!
//! Responses (`"kind"` selects the shape):
//!
//! ```json
//! {"kind":"result","result":{"image":{...},"assignment":[...],"report":{...}}}
//! {"kind":"rejected","retry_after_ms":50}
//! {"kind":"stats","stats":{...}}
//! {"kind":"metrics","text":"..."}
//! {"kind":"pong"}
//! {"kind":"shutting-down"}
//! {"kind":"error","message":"..."}
//! ```
//!
//! A `result`'s `report` object is the job's
//! [`GenerationReport::to_json`](photomosaic::GenerationReport::to_json)
//! extended with two service-level keys: `queue_wait_ms` (time between
//! acceptance and a worker picking the job up) and `cache_hit` (whether
//! the Step-2 matrix came from the cache).

use photomosaic::{JobSpec, Json};
use std::io::{BufRead, Write};

/// The request `"op"` words. This module is the registry: every
/// encoder, decoder, and dispatcher names these constants, so the wire
/// vocabulary is defined exactly once (enforced by `mosaic-lint`'s
/// `protocol-registry` rule).
pub mod ops {
    /// Run a job.
    pub const SUBMIT: &str = "submit";
    /// Aggregate service metrics as JSON.
    pub const STATS: &str = "stats";
    /// Service metrics as Prometheus-style text.
    pub const METRICS: &str = "metrics";
    /// Liveness check.
    pub const PING: &str = "ping";
    /// Graceful shutdown.
    pub const SHUTDOWN: &str = "shutdown";
}

/// The response `"kind"` words — the response half of the registry.
pub mod kinds {
    /// A finished job.
    pub const RESULT: &str = "result";
    /// Queue full; retry later.
    pub const REJECTED: &str = "rejected";
    /// Metrics snapshot (JSON).
    pub const STATS: &str = "stats";
    /// Metrics exposition (text).
    pub const METRICS: &str = "metrics";
    /// Liveness reply.
    pub const PONG: &str = "pong";
    /// Shutdown acknowledged.
    pub const SHUTTING_DOWN: &str = "shutting-down";
    /// The request failed.
    pub const ERROR: &str = "error";
}

/// A parsed client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Run a job.
    Submit(Box<JobSpec>),
    /// Report aggregate service metrics (JSON).
    Stats,
    /// Report service metrics as Prometheus-style text.
    Metrics,
    /// Liveness check.
    Ping,
    /// Begin graceful shutdown (control command).
    Shutdown,
}

impl Request {
    /// Serialize for the wire.
    pub fn to_json(&self) -> Json {
        match self {
            Request::Submit(spec) => {
                Json::obj([("op", Json::from(ops::SUBMIT)), ("job", spec.to_json())])
            }
            Request::Stats => Json::obj([("op", Json::from(ops::STATS))]),
            Request::Metrics => Json::obj([("op", Json::from(ops::METRICS))]),
            Request::Ping => Json::obj([("op", Json::from(ops::PING))]),
            Request::Shutdown => Json::obj([("op", Json::from(ops::SHUTDOWN))]),
        }
    }

    /// Parse the shape produced by [`to_json`](Self::to_json).
    ///
    /// # Errors
    /// Returns a description of the first malformed field.
    pub fn from_json(value: &Json) -> Result<Request, String> {
        let op = value
            .get("op")
            .and_then(Json::as_str)
            .ok_or("request needs an \"op\" string")?;
        match op {
            ops::SUBMIT => {
                let job = value.get("job").ok_or("submit needs a \"job\"")?;
                Ok(Request::Submit(Box::new(JobSpec::from_json(job)?)))
            }
            ops::STATS => Ok(Request::Stats),
            ops::METRICS => Ok(Request::Metrics),
            ops::PING => Ok(Request::Ping),
            ops::SHUTDOWN => Ok(Request::Shutdown),
            other => Err(format!("unknown op {other:?}")),
        }
    }
}

/// A server response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// A finished job (`JobResult::to_json` with service metrics folded
    /// into the report).
    Result {
        /// The serialized `JobResult`.
        result: Json,
    },
    /// The queue was full; retry after the given delay.
    Rejected {
        /// Suggested client back-off.
        retry_after_ms: u64,
    },
    /// Aggregate metrics snapshot.
    Stats {
        /// The metrics object.
        stats: Json,
    },
    /// Prometheus-style text exposition (newlines survive the wire via
    /// JSON string escaping).
    Metrics {
        /// The exposition text.
        text: String,
    },
    /// Liveness reply.
    Pong,
    /// Shutdown acknowledged; the server drains queued jobs then exits.
    ShuttingDown,
    /// The request failed.
    Error {
        /// What went wrong.
        message: String,
    },
}

impl Response {
    /// Serialize for the wire.
    pub fn to_json(&self) -> Json {
        match self {
            Response::Result { result } => Json::obj([
                ("kind", Json::from(kinds::RESULT)),
                (kinds::RESULT, result.clone()),
            ]),
            Response::Rejected { retry_after_ms } => Json::obj([
                ("kind", Json::from(kinds::REJECTED)),
                ("retry_after_ms", Json::from(*retry_after_ms)),
            ]),
            Response::Stats { stats } => Json::obj([
                ("kind", Json::from(kinds::STATS)),
                (kinds::STATS, stats.clone()),
            ]),
            Response::Metrics { text } => Json::obj([
                ("kind", Json::from(kinds::METRICS)),
                ("text", Json::from(text.as_str())),
            ]),
            Response::Pong => Json::obj([("kind", Json::from(kinds::PONG))]),
            Response::ShuttingDown => Json::obj([("kind", Json::from(kinds::SHUTTING_DOWN))]),
            Response::Error { message } => Json::obj([
                ("kind", Json::from(kinds::ERROR)),
                ("message", Json::from(message.as_str())),
            ]),
        }
    }

    /// Parse the shape produced by [`to_json`](Self::to_json).
    ///
    /// # Errors
    /// Returns a description of the first malformed field.
    pub fn from_json(value: &Json) -> Result<Response, String> {
        let kind = value
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("response needs a \"kind\" string")?;
        match kind {
            kinds::RESULT => Ok(Response::Result {
                result: value
                    .get(kinds::RESULT)
                    .cloned()
                    .ok_or("result response needs a \"result\"")?,
            }),
            kinds::REJECTED => Ok(Response::Rejected {
                retry_after_ms: value
                    .get("retry_after_ms")
                    .and_then(Json::as_u64)
                    .ok_or("rejected response needs \"retry_after_ms\"")?,
            }),
            kinds::STATS => Ok(Response::Stats {
                stats: value
                    .get(kinds::STATS)
                    .cloned()
                    .ok_or("stats response needs \"stats\"")?,
            }),
            kinds::METRICS => Ok(Response::Metrics {
                text: value
                    .get("text")
                    .and_then(Json::as_str)
                    .ok_or("metrics response needs \"text\"")?
                    .to_string(),
            }),
            kinds::PONG => Ok(Response::Pong),
            kinds::SHUTTING_DOWN => Ok(Response::ShuttingDown),
            kinds::ERROR => Ok(Response::Error {
                message: value
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown error")
                    .to_string(),
            }),
            other => Err(format!("unknown response kind {other:?}")),
        }
    }
}

/// Write one message (JSON + `\n`) and flush.
///
/// # Errors
/// Propagates I/O failures.
pub fn write_message(writer: &mut impl Write, message: &Json) -> std::io::Result<()> {
    let mut line = message.encode();
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()
}

/// Read one message. Returns `Ok(None)` on clean EOF before any bytes.
///
/// # Errors
/// Propagates I/O failures; malformed JSON surfaces as
/// [`std::io::ErrorKind::InvalidData`].
pub fn read_message(reader: &mut impl BufRead) -> std::io::Result<Option<Json>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    Json::parse(line.trim_end_matches(['\r', '\n']))
        .map(Some)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use photomosaic::{ImageSource, MosaicConfig};

    fn sample_spec() -> JobSpec {
        JobSpec {
            input: ImageSource::Synth {
                scene: mosaic_image::synth::Scene::Portrait,
                size: 16,
                seed: 3,
            },
            target: ImageSource::Pixels {
                size: 2,
                pixels: vec![9, 8, 7, 6],
            },
            config: MosaicConfig::default(),
        }
    }

    #[test]
    fn requests_roundtrip() {
        for request in [
            Request::Submit(Box::new(sample_spec())),
            Request::Stats,
            Request::Metrics,
            Request::Ping,
            Request::Shutdown,
        ] {
            let text = request.to_json().encode();
            let back = Request::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, request);
        }
    }

    #[test]
    fn responses_roundtrip() {
        for response in [
            Response::Result {
                result: Json::obj([("x", Json::from(1u64))]),
            },
            Response::Rejected { retry_after_ms: 75 },
            Response::Stats {
                stats: Json::obj([("jobs", Json::from(2u64))]),
            },
            Response::Metrics {
                text: "# TYPE a counter\na 1\n".to_string(),
            },
            Response::Pong,
            Response::ShuttingDown,
            Response::Error {
                message: "boom".to_string(),
            },
        ] {
            let text = response.to_json().encode();
            let back = Response::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, response);
        }
    }

    #[test]
    fn framing_roundtrips_over_a_buffer() {
        let mut wire = Vec::new();
        write_message(&mut wire, &Request::Ping.to_json()).unwrap();
        write_message(&mut wire, &Request::Stats.to_json()).unwrap();
        let mut reader = std::io::BufReader::new(wire.as_slice());
        let first = read_message(&mut reader).unwrap().unwrap();
        assert_eq!(Request::from_json(&first).unwrap(), Request::Ping);
        let second = read_message(&mut reader).unwrap().unwrap();
        assert_eq!(Request::from_json(&second).unwrap(), Request::Stats);
        assert!(read_message(&mut reader).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn malformed_lines_are_invalid_data() {
        let mut reader = std::io::BufReader::new(&b"{nope\n"[..]);
        let err = read_message(&mut reader).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn unknown_ops_are_rejected() {
        let v = Json::parse(r#"{"op":"dance"}"#).unwrap();
        assert!(Request::from_json(&v).is_err());
        let v = Json::parse(r#"{"kind":"dance"}"#).unwrap();
        assert!(Response::from_json(&v).is_err());
    }
}
