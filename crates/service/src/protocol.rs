//! The wire protocol: line-delimited JSON over TCP.
//!
//! Each request and each response is one JSON object on one line,
//! terminated by `\n` (no newlines inside a message — the std-only
//! encoder in `photomosaic::json` never emits any). A connection may
//! carry any number of request/response pairs, in order.
//!
//! Requests (`"op"` selects the operation):
//!
//! ```json
//! {"op":"submit","job":{"input":{...},"target":{...},"config":{...}}}
//! {"op":"stats"}
//! {"op":"metrics"}
//! {"op":"ping"}
//! {"op":"shutdown"}
//! {"op":"gateway"}
//! {"op":"library","job":{"target":{...},"store":"/path","params":{...}}}
//! ```
//!
//! Responses (`"kind"` selects the shape):
//!
//! ```json
//! {"kind":"result","result":{"image":{...},"assignment":[...],"report":{...}}}
//! {"kind":"rejected","retry_after_ms":50}
//! {"kind":"stats","stats":{...}}
//! {"kind":"metrics","text":"..."}
//! {"kind":"pong"}
//! {"kind":"shutting-down"}
//! {"kind":"error","message":"..."}
//! {"kind":"frame_too_large","max_frame_bytes":16777216}
//! {"kind":"deadline_exceeded","deadline_ms":30000}
//! {"kind":"gateway","gateway":{...}}
//! {"kind":"backend_down","backend":"127.0.0.1:7733","retry_after_ms":50}
//! {"kind":"no_backend_available","retry_after_ms":50}
//! {"kind":"store_error","message":"..."}
//! {"kind":"library_infeasible","cells":256,"tiles":40}
//! ```
//!
//! The last three shapes are produced only by `mosaic-gateway`, which
//! speaks this same protocol in front of a backend fleet; a plain
//! server answers the `gateway` op with an `error`.
//!
//! A `result`'s `report` object is the job's
//! [`GenerationReport::to_json`](photomosaic::GenerationReport::to_json)
//! extended with two service-level keys: `queue_wait_ms` (time between
//! acceptance and a worker picking the job up) and `cache_hit` (whether
//! the Step-2 matrix came from the cache).

use mosaic_tilelib::LibraryJobSpec;
use photomosaic::{JobSpec, Json};
use std::io::{BufRead, Write};

/// The request `"op"` words. This module is the registry: every
/// encoder, decoder, and dispatcher names these constants, so the wire
/// vocabulary is defined exactly once (enforced by `mosaic-lint`'s
/// `protocol-registry` rule).
pub mod ops {
    /// Run a job.
    pub const SUBMIT: &str = "submit";
    /// Aggregate service metrics as JSON.
    pub const STATS: &str = "stats";
    /// Service metrics as Prometheus-style text.
    pub const METRICS: &str = "metrics";
    /// Liveness check.
    pub const PING: &str = "ping";
    /// Graceful shutdown.
    pub const SHUTDOWN: &str = "shutdown";
    /// Gateway routing/health snapshot (answered by `mosaic-gateway`
    /// instances; plain servers answer with an error).
    pub const GATEWAY: &str = "gateway";
    /// Run a tile-library job: solve the target against an on-disk
    /// content-addressed tile store with clustered candidate pruning.
    pub const LIBRARY: &str = "library";
}

/// The response `"kind"` words — the response half of the registry.
pub mod kinds {
    /// A finished job.
    pub const RESULT: &str = "result";
    /// Queue full; retry later.
    pub const REJECTED: &str = "rejected";
    /// Metrics snapshot (JSON).
    pub const STATS: &str = "stats";
    /// Metrics exposition (text).
    pub const METRICS: &str = "metrics";
    /// Liveness reply.
    pub const PONG: &str = "pong";
    /// Shutdown acknowledged.
    pub const SHUTTING_DOWN: &str = "shutting-down";
    /// The request failed.
    pub const ERROR: &str = "error";
    /// The request frame exceeded the server's size limit.
    pub const FRAME_TOO_LARGE: &str = "frame_too_large";
    /// The job ran past the server's per-job deadline.
    pub const DEADLINE_EXCEEDED: &str = "deadline_exceeded";
    /// Gateway routing/health snapshot (JSON).
    pub const GATEWAY: &str = "gateway";
    /// Every routing attempt for the job died on connect/IO and the
    /// failover hop budget is spent.
    pub const BACKEND_DOWN: &str = "backend_down";
    /// No backend is currently routable at all.
    pub const NO_BACKEND_AVAILABLE: &str = "no_backend_available";
    /// A library job's tile store could not be opened or read.
    pub const STORE_ERROR: &str = "store_error";
    /// A library job asked for more cells than the store has tiles.
    pub const LIBRARY_INFEASIBLE: &str = "library_infeasible";
}

/// A parsed client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Run a job.
    Submit(Box<JobSpec>),
    /// Report aggregate service metrics (JSON).
    Stats,
    /// Report service metrics as Prometheus-style text.
    Metrics,
    /// Liveness check.
    Ping,
    /// Begin graceful shutdown (control command).
    Shutdown,
    /// Report the gateway's routing table and per-backend health.
    GatewayInfo,
    /// Run a tile-library job against an on-disk tile store.
    Library(Box<LibraryJobSpec>),
}

impl Request {
    /// Serialize for the wire.
    pub fn to_json(&self) -> Json {
        match self {
            Request::Submit(spec) => {
                Json::obj([("op", Json::from(ops::SUBMIT)), ("job", spec.to_json())])
            }
            Request::Stats => Json::obj([("op", Json::from(ops::STATS))]),
            Request::Metrics => Json::obj([("op", Json::from(ops::METRICS))]),
            Request::Ping => Json::obj([("op", Json::from(ops::PING))]),
            Request::Shutdown => Json::obj([("op", Json::from(ops::SHUTDOWN))]),
            Request::GatewayInfo => Json::obj([("op", Json::from(ops::GATEWAY))]),
            Request::Library(spec) => {
                Json::obj([("op", Json::from(ops::LIBRARY)), ("job", spec.to_json())])
            }
        }
    }

    /// Parse the shape produced by [`to_json`](Self::to_json).
    ///
    /// # Errors
    /// Returns a description of the first malformed field.
    pub fn from_json(value: &Json) -> Result<Request, String> {
        let op = value
            .get("op")
            .and_then(Json::as_str)
            .ok_or("request needs an \"op\" string")?;
        match op {
            ops::SUBMIT => {
                let job = value.get("job").ok_or("submit needs a \"job\"")?;
                Ok(Request::Submit(Box::new(JobSpec::from_json(job)?)))
            }
            ops::STATS => Ok(Request::Stats),
            ops::METRICS => Ok(Request::Metrics),
            ops::PING => Ok(Request::Ping),
            ops::SHUTDOWN => Ok(Request::Shutdown),
            ops::GATEWAY => Ok(Request::GatewayInfo),
            ops::LIBRARY => {
                let job = value.get("job").ok_or("library needs a \"job\"")?;
                Ok(Request::Library(Box::new(LibraryJobSpec::from_json(job)?)))
            }
            other => Err(format!("unknown op {other:?}")),
        }
    }
}

/// A server response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// A finished job (`JobResult::to_json` with service metrics folded
    /// into the report).
    Result {
        /// The serialized `JobResult`.
        result: Json,
    },
    /// The queue was full; retry after the given delay.
    Rejected {
        /// Suggested client back-off.
        retry_after_ms: u64,
    },
    /// Aggregate metrics snapshot.
    Stats {
        /// The metrics object.
        stats: Json,
    },
    /// Prometheus-style text exposition (newlines survive the wire via
    /// JSON string escaping).
    Metrics {
        /// The exposition text.
        text: String,
    },
    /// Liveness reply.
    Pong,
    /// Shutdown acknowledged; the server drains queued jobs then exits.
    ShuttingDown,
    /// The request failed.
    Error {
        /// What went wrong.
        message: String,
    },
    /// The request frame exceeded the server's size limit; the
    /// connection is closed after this response because framing is lost.
    FrameTooLarge {
        /// The server's per-frame byte limit.
        max_frame_bytes: u64,
    },
    /// The job ran past the server's per-job deadline and was cancelled
    /// at the next sweep/row boundary.
    DeadlineExceeded {
        /// The deadline that was exceeded.
        deadline_ms: u64,
    },
    /// Gateway routing table and per-backend health snapshot.
    Gateway {
        /// The snapshot object.
        gateway: Json,
    },
    /// Every failover attempt for the job hit a dead backend; the
    /// client should back off and retry like a rejection.
    BackendDown {
        /// The last backend address that failed.
        backend: String,
        /// Suggested client back-off.
        retry_after_ms: u64,
    },
    /// No backend is routable at all (whole fleet down or removed).
    NoBackendAvailable {
        /// Suggested client back-off.
        retry_after_ms: u64,
    },
    /// A library job's tile store could not be opened or read on the
    /// executing host.
    StoreError {
        /// What went wrong with the store.
        message: String,
    },
    /// A library job asked for more cells than the store holds tiles,
    /// so no injective assignment exists.
    LibraryInfeasible {
        /// Cells the job needs to fill.
        cells: u64,
        /// Tiles the store actually holds.
        tiles: u64,
    },
}

impl Response {
    /// Serialize for the wire.
    pub fn to_json(&self) -> Json {
        match self {
            Response::Result { result } => Json::obj([
                ("kind", Json::from(kinds::RESULT)),
                (kinds::RESULT, result.clone()),
            ]),
            Response::Rejected { retry_after_ms } => Json::obj([
                ("kind", Json::from(kinds::REJECTED)),
                ("retry_after_ms", Json::from(*retry_after_ms)),
            ]),
            Response::Stats { stats } => Json::obj([
                ("kind", Json::from(kinds::STATS)),
                (kinds::STATS, stats.clone()),
            ]),
            Response::Metrics { text } => Json::obj([
                ("kind", Json::from(kinds::METRICS)),
                ("text", Json::from(text.as_str())),
            ]),
            Response::Pong => Json::obj([("kind", Json::from(kinds::PONG))]),
            Response::ShuttingDown => Json::obj([("kind", Json::from(kinds::SHUTTING_DOWN))]),
            Response::Error { message } => Json::obj([
                ("kind", Json::from(kinds::ERROR)),
                ("message", Json::from(message.as_str())),
            ]),
            Response::FrameTooLarge { max_frame_bytes } => Json::obj([
                ("kind", Json::from(kinds::FRAME_TOO_LARGE)),
                ("max_frame_bytes", Json::from(*max_frame_bytes)),
            ]),
            Response::DeadlineExceeded { deadline_ms } => Json::obj([
                ("kind", Json::from(kinds::DEADLINE_EXCEEDED)),
                ("deadline_ms", Json::from(*deadline_ms)),
            ]),
            Response::Gateway { gateway } => Json::obj([
                ("kind", Json::from(kinds::GATEWAY)),
                (kinds::GATEWAY, gateway.clone()),
            ]),
            Response::BackendDown {
                backend,
                retry_after_ms,
            } => Json::obj([
                ("kind", Json::from(kinds::BACKEND_DOWN)),
                ("backend", Json::from(backend.as_str())),
                ("retry_after_ms", Json::from(*retry_after_ms)),
            ]),
            Response::NoBackendAvailable { retry_after_ms } => Json::obj([
                ("kind", Json::from(kinds::NO_BACKEND_AVAILABLE)),
                ("retry_after_ms", Json::from(*retry_after_ms)),
            ]),
            Response::StoreError { message } => Json::obj([
                ("kind", Json::from(kinds::STORE_ERROR)),
                ("message", Json::from(message.as_str())),
            ]),
            Response::LibraryInfeasible { cells, tiles } => Json::obj([
                ("kind", Json::from(kinds::LIBRARY_INFEASIBLE)),
                ("cells", Json::from(*cells)),
                ("tiles", Json::from(*tiles)),
            ]),
        }
    }

    /// Parse the shape produced by [`to_json`](Self::to_json).
    ///
    /// # Errors
    /// Returns a description of the first malformed field.
    pub fn from_json(value: &Json) -> Result<Response, String> {
        let kind = value
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("response needs a \"kind\" string")?;
        match kind {
            kinds::RESULT => Ok(Response::Result {
                result: value
                    .get(kinds::RESULT)
                    .cloned()
                    .ok_or("result response needs a \"result\"")?,
            }),
            kinds::REJECTED => Ok(Response::Rejected {
                retry_after_ms: value
                    .get("retry_after_ms")
                    .and_then(Json::as_u64)
                    .ok_or("rejected response needs \"retry_after_ms\"")?,
            }),
            kinds::STATS => Ok(Response::Stats {
                stats: value
                    .get(kinds::STATS)
                    .cloned()
                    .ok_or("stats response needs \"stats\"")?,
            }),
            kinds::METRICS => Ok(Response::Metrics {
                text: value
                    .get("text")
                    .and_then(Json::as_str)
                    .ok_or("metrics response needs \"text\"")?
                    .to_string(),
            }),
            kinds::PONG => Ok(Response::Pong),
            kinds::SHUTTING_DOWN => Ok(Response::ShuttingDown),
            kinds::ERROR => Ok(Response::Error {
                message: value
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown error")
                    .to_string(),
            }),
            kinds::FRAME_TOO_LARGE => Ok(Response::FrameTooLarge {
                max_frame_bytes: value
                    .get("max_frame_bytes")
                    .and_then(Json::as_u64)
                    .ok_or("frame-too-large response needs \"max_frame_bytes\"")?,
            }),
            kinds::DEADLINE_EXCEEDED => Ok(Response::DeadlineExceeded {
                deadline_ms: value
                    .get("deadline_ms")
                    .and_then(Json::as_u64)
                    .ok_or("deadline-exceeded response needs \"deadline_ms\"")?,
            }),
            kinds::GATEWAY => Ok(Response::Gateway {
                gateway: value
                    .get(kinds::GATEWAY)
                    .cloned()
                    .ok_or("gateway response needs a \"gateway\"")?,
            }),
            kinds::BACKEND_DOWN => Ok(Response::BackendDown {
                backend: value
                    .get("backend")
                    .and_then(Json::as_str)
                    .ok_or("backend-down response needs a \"backend\"")?
                    .to_string(),
                retry_after_ms: value
                    .get("retry_after_ms")
                    .and_then(Json::as_u64)
                    .ok_or("backend-down response needs \"retry_after_ms\"")?,
            }),
            kinds::NO_BACKEND_AVAILABLE => Ok(Response::NoBackendAvailable {
                retry_after_ms: value
                    .get("retry_after_ms")
                    .and_then(Json::as_u64)
                    .ok_or("no-backend-available response needs \"retry_after_ms\"")?,
            }),
            kinds::STORE_ERROR => Ok(Response::StoreError {
                message: value
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown store error")
                    .to_string(),
            }),
            kinds::LIBRARY_INFEASIBLE => Ok(Response::LibraryInfeasible {
                cells: value
                    .get("cells")
                    .and_then(Json::as_u64)
                    .ok_or("library-infeasible response needs \"cells\"")?,
                tiles: value
                    .get("tiles")
                    .and_then(Json::as_u64)
                    .ok_or("library-infeasible response needs \"tiles\"")?,
            }),
            other => Err(format!("unknown response kind {other:?}")),
        }
    }
}

/// Write one message (JSON + `\n`) and flush.
///
/// # Errors
/// Propagates I/O failures.
pub fn write_message(writer: &mut impl Write, message: &Json) -> std::io::Result<()> {
    let mut line = message.encode();
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()
}

/// Why [`read_message`] did not produce a message.
#[derive(Debug)]
pub enum ReadError {
    /// The frame exceeded `max_frame_bytes` before its newline arrived.
    /// Framing is lost: the caller must drop the connection after
    /// (optionally) answering with [`Response::FrameTooLarge`].
    FrameTooLarge {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// The line was complete but not valid UTF-8 JSON.
    Malformed(String),
    /// The underlying transport failed (includes read timeouts, which
    /// surface as [`std::io::ErrorKind::WouldBlock`] or
    /// [`std::io::ErrorKind::TimedOut`] depending on the platform).
    Io(std::io::Error),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::FrameTooLarge { limit } => {
                write!(f, "frame exceeds the {limit}-byte limit")
            }
            ReadError::Malformed(e) => write!(f, "malformed message: {e}"),
            ReadError::Io(e) => write!(f, "read failed: {e}"),
        }
    }
}

impl std::error::Error for ReadError {}

impl From<ReadError> for std::io::Error {
    fn from(e: ReadError) -> Self {
        match e {
            ReadError::Io(io) => io,
            other => std::io::Error::new(std::io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// Read one message of at most `max_frame_bytes` payload bytes
/// (excluding the terminating newline). Returns `Ok(None)` on clean EOF
/// before any bytes.
///
/// The line is accumulated through [`BufRead::fill_buf`] in transport-
/// sized chunks and the limit is enforced *before* each chunk is copied,
/// so peak allocation is bounded by `max_frame_bytes` plus the reader's
/// own buffer no matter how many bytes a hostile peer streams.
///
/// # Errors
/// [`ReadError::FrameTooLarge`] once the accumulated line would exceed
/// the limit, [`ReadError::Malformed`] for non-JSON payloads, and
/// [`ReadError::Io`] for transport failures.
pub fn read_message(
    reader: &mut impl BufRead,
    max_frame_bytes: usize,
) -> Result<Option<Json>, ReadError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let chunk = match reader.fill_buf() {
            Ok(chunk) => chunk,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ReadError::Io(e)),
        };
        if chunk.is_empty() {
            if line.is_empty() {
                return Ok(None); // clean EOF between messages
            }
            break; // EOF mid-line: try to parse what arrived
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(newline_at) => {
                if line.len() + newline_at > max_frame_bytes {
                    return Err(ReadError::FrameTooLarge {
                        limit: max_frame_bytes,
                    });
                }
                line.extend_from_slice(&chunk[..newline_at]);
                reader.consume(newline_at + 1);
                break;
            }
            None => {
                let len = chunk.len();
                if line.len() + len > max_frame_bytes {
                    return Err(ReadError::FrameTooLarge {
                        limit: max_frame_bytes,
                    });
                }
                line.extend_from_slice(chunk);
                reader.consume(len);
            }
        }
    }
    let text = match std::str::from_utf8(&line) {
        Ok(text) => text,
        Err(e) => return Err(ReadError::Malformed(e.to_string())),
    };
    Json::parse(text.trim_end_matches('\r'))
        .map(Some)
        .map_err(|e| ReadError::Malformed(e.to_string()))
}

/// Incremental, bounded line framing for nonblocking sockets.
///
/// The event-driven front-end cannot park a thread in [`read_message`],
/// so it feeds whatever bytes the socket had into an accumulator and
/// pops complete frames as they form. The frame cap is enforced with the
/// same discipline as [`read_message`]: each chunk is checked against
/// `max_frame_bytes` *before* it is copied, so peak buffering per
/// connection stays bounded no matter how many bytes a hostile peer
/// streams without a newline.
#[derive(Debug)]
pub struct FrameAccumulator {
    /// Complete newline-terminated lines, oldest first.
    complete: std::collections::VecDeque<Vec<u8>>,
    /// The in-progress line (no newline seen yet).
    tail: Vec<u8>,
    /// Frame cap in bytes (`usize::MAX` = unlimited).
    limit: usize,
}

impl FrameAccumulator {
    /// An empty accumulator enforcing `max_frame_bytes` per frame
    /// (0 = unlimited, matching the `ServiceConfig` knob).
    pub fn new(max_frame_bytes: usize) -> FrameAccumulator {
        FrameAccumulator {
            complete: std::collections::VecDeque::new(),
            tail: Vec::new(),
            limit: match max_frame_bytes {
                0 => usize::MAX,
                limit => limit,
            },
        }
    }

    /// Feed bytes read from the socket. Complete lines become poppable
    /// via [`next_message`](FrameAccumulator::next_message).
    ///
    /// # Errors
    /// [`ReadError::FrameTooLarge`] once any single frame would exceed
    /// the cap — checked before the offending bytes are buffered.
    /// Framing is lost at that point; the caller must stop feeding and
    /// drop the connection after (optionally) answering.
    pub fn extend(&mut self, mut chunk: &[u8]) -> Result<(), ReadError> {
        while let Some(newline_at) = chunk.iter().position(|&b| b == b'\n') {
            let segment = &chunk[..newline_at];
            if self.tail.len() + segment.len() > self.limit {
                return Err(ReadError::FrameTooLarge { limit: self.limit });
            }
            let mut line = std::mem::take(&mut self.tail);
            line.extend_from_slice(segment);
            self.complete.push_back(line);
            chunk = &chunk[newline_at + 1..];
        }
        if self.tail.len() + chunk.len() > self.limit {
            return Err(ReadError::FrameTooLarge { limit: self.limit });
        }
        self.tail.extend_from_slice(chunk);
        Ok(())
    }

    /// Pop the next complete frame, parsed as JSON. `Ok(None)` means no
    /// complete frame is buffered yet — feed more bytes.
    ///
    /// # Errors
    /// [`ReadError::Malformed`] for a complete line that is not UTF-8
    /// JSON; the line is consumed (the caller decides whether framing
    /// trust is lost, mirroring [`read_message`]'s contract).
    pub fn next_message(&mut self) -> Result<Option<Json>, ReadError> {
        let Some(line) = self.complete.pop_front() else {
            return Ok(None);
        };
        let text = match std::str::from_utf8(&line) {
            Ok(text) => text,
            Err(e) => return Err(ReadError::Malformed(e.to_string())),
        };
        Json::parse(text.trim_end_matches('\r'))
            .map(Some)
            .map_err(|e| ReadError::Malformed(e.to_string()))
    }

    /// Bytes of the in-progress (incomplete) frame — what a mid-frame
    /// disconnect abandons.
    pub fn partial_len(&self) -> usize {
        self.tail.len()
    }

    /// True when a stalled peer left an unfinished frame behind (the
    /// slowloris posture) or finished frames are waiting to be served.
    pub fn has_buffered_input(&self) -> bool {
        !self.tail.is_empty() || !self.complete.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photomosaic::{ImageSource, MosaicConfig};

    fn sample_spec() -> JobSpec {
        JobSpec {
            input: ImageSource::Synth {
                scene: mosaic_image::synth::Scene::Portrait,
                size: 16,
                seed: 3,
            },
            target: ImageSource::Pixels {
                size: 2,
                pixels: vec![9, 8, 7, 6],
            },
            config: MosaicConfig::default(),
        }
    }

    #[test]
    fn requests_roundtrip() {
        for request in [
            Request::Submit(Box::new(sample_spec())),
            Request::Stats,
            Request::Metrics,
            Request::Ping,
            Request::Shutdown,
            Request::GatewayInfo,
            Request::Library(Box::new(LibraryJobSpec {
                target: ImageSource::Synth {
                    scene: mosaic_image::synth::Scene::Plasma,
                    size: 32,
                    seed: 1,
                },
                store: "/tmp/tiles".to_string(),
                params: Default::default(),
            })),
        ] {
            let text = request.to_json().encode();
            let back = Request::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, request);
        }
    }

    #[test]
    fn responses_roundtrip() {
        for response in [
            Response::Result {
                result: Json::obj([("x", Json::from(1u64))]),
            },
            Response::Rejected { retry_after_ms: 75 },
            Response::Stats {
                stats: Json::obj([("jobs", Json::from(2u64))]),
            },
            Response::Metrics {
                text: "# TYPE a counter\na 1\n".to_string(),
            },
            Response::Pong,
            Response::ShuttingDown,
            Response::Error {
                message: "boom".to_string(),
            },
            Response::FrameTooLarge {
                max_frame_bytes: 16 * 1024 * 1024,
            },
            Response::DeadlineExceeded { deadline_ms: 30000 },
            Response::Gateway {
                gateway: Json::obj([("backends", Json::from(2u64))]),
            },
            Response::BackendDown {
                backend: "127.0.0.1:7733".to_string(),
                retry_after_ms: 50,
            },
            Response::NoBackendAvailable { retry_after_ms: 50 },
            Response::StoreError {
                message: "store.json missing".to_string(),
            },
            Response::LibraryInfeasible {
                cells: 256,
                tiles: 40,
            },
        ] {
            let text = response.to_json().encode();
            let back = Response::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, response);
        }
    }

    /// A frame cap comfortably above every message these tests write.
    const TEST_LIMIT: usize = 64 * 1024;

    #[test]
    fn framing_roundtrips_over_a_buffer() {
        let mut wire = Vec::new();
        write_message(&mut wire, &Request::Ping.to_json()).unwrap();
        write_message(&mut wire, &Request::Stats.to_json()).unwrap();
        let mut reader = std::io::BufReader::new(wire.as_slice());
        let first = read_message(&mut reader, TEST_LIMIT).unwrap().unwrap();
        assert_eq!(Request::from_json(&first).unwrap(), Request::Ping);
        let second = read_message(&mut reader, TEST_LIMIT).unwrap().unwrap();
        assert_eq!(Request::from_json(&second).unwrap(), Request::Stats);
        assert!(
            read_message(&mut reader, TEST_LIMIT).unwrap().is_none(),
            "clean EOF"
        );
    }

    #[test]
    fn malformed_lines_are_typed_errors_and_io_errors() {
        let mut reader = std::io::BufReader::new(&b"{nope\n"[..]);
        let err = read_message(&mut reader, TEST_LIMIT).unwrap_err();
        assert!(matches!(err, ReadError::Malformed(_)), "{err:?}");
        // The io::Error conversion clients use keeps the InvalidData kind.
        let io: std::io::Error = err.into();
        assert_eq!(io.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn frame_exactly_at_the_limit_is_accepted() {
        // Payload of exactly `limit` bytes (newline excluded) must pass.
        let payload = format!("\"{}\"", "a".repeat(30));
        assert_eq!(payload.len(), 32);
        let wire = format!("{payload}\n");
        let mut reader = std::io::BufReader::new(wire.as_bytes());
        let value = read_message(&mut reader, 32).unwrap().unwrap();
        assert_eq!(value.as_str(), Some("a".repeat(30).as_str()));
    }

    #[test]
    fn frame_one_byte_over_the_limit_is_rejected() {
        let wire = "[1,2,3,4,5,6]\n"; // 13 payload bytes
        let mut reader = std::io::BufReader::new(wire.as_bytes());
        let err = read_message(&mut reader, 12).unwrap_err();
        assert!(matches!(err, ReadError::FrameTooLarge { limit: 12 }));
    }

    /// An infinite newline-free byte source that counts how much was
    /// actually pulled, so the test can prove the reader stops early.
    struct Firehose {
        served: usize,
        total: usize,
    }

    impl std::io::Read for Firehose {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = buf.len().min(self.total - self.served);
            buf[..n].fill(b'a');
            self.served += n;
            Ok(n)
        }
    }

    #[test]
    fn hundred_megabyte_frame_is_rejected_with_bounded_peak_allocation() {
        const FRAME: usize = 100 * 1024 * 1024;
        const LIMIT: usize = 1024 * 1024;
        let firehose = Firehose {
            served: 0,
            total: FRAME,
        };
        let mut reader = std::io::BufReader::new(firehose);
        let err = read_message(&mut reader, LIMIT).unwrap_err();
        assert!(matches!(err, ReadError::FrameTooLarge { limit: LIMIT }));
        // The reader must bail as soon as the limit is crossed instead of
        // slurping the whole 100 MB: what was pulled off the transport is
        // the limit plus at most one BufReader refill.
        let served = reader.get_ref().served;
        assert!(
            served <= LIMIT + 64 * 1024,
            "pulled {served} bytes for a {LIMIT}-byte limit"
        );
    }

    #[test]
    fn eof_mid_frame_is_malformed_not_a_hang() {
        let mut reader = std::io::BufReader::new(&b"{\"op\":\"pi"[..]);
        let err = read_message(&mut reader, TEST_LIMIT).unwrap_err();
        assert!(matches!(err, ReadError::Malformed(_)));
    }

    #[test]
    fn unknown_ops_are_rejected() {
        let v = Json::parse(r#"{"op":"dance"}"#).unwrap();
        assert!(Request::from_json(&v).is_err());
        let v = Json::parse(r#"{"kind":"dance"}"#).unwrap();
        assert!(Response::from_json(&v).is_err());
    }

    #[test]
    fn accumulator_assembles_frames_across_arbitrary_chunking() {
        let wire = b"{\"op\":\"ping\"}\n{\"op\":\"stats\"}\n{\"op\":";
        for chunk_size in 1..wire.len() {
            let mut acc = FrameAccumulator::new(TEST_LIMIT);
            for chunk in wire.chunks(chunk_size) {
                acc.extend(chunk).unwrap();
            }
            let first = acc.next_message().unwrap().unwrap();
            assert_eq!(Request::from_json(&first), Ok(Request::Ping));
            let second = acc.next_message().unwrap().unwrap();
            assert_eq!(Request::from_json(&second), Ok(Request::Stats));
            assert!(acc.next_message().unwrap().is_none());
            assert_eq!(acc.partial_len(), b"{\"op\":".len());
            assert!(acc.has_buffered_input());
        }
    }

    #[test]
    fn accumulator_handles_crlf_and_several_frames_in_one_chunk() {
        let mut acc = FrameAccumulator::new(TEST_LIMIT);
        acc.extend(b"{\"op\":\"ping\"}\r\n{\"op\":\"ping\"}\r\n")
            .unwrap();
        assert_eq!(
            Request::from_json(&acc.next_message().unwrap().unwrap()),
            Ok(Request::Ping)
        );
        assert_eq!(
            Request::from_json(&acc.next_message().unwrap().unwrap()),
            Ok(Request::Ping)
        );
        assert!(!acc.has_buffered_input());
    }

    #[test]
    fn accumulator_enforces_the_limit_before_copying() {
        let mut acc = FrameAccumulator::new(8);
        acc.extend(b"12345678").unwrap(); // exactly at the cap
        let err = acc.extend(b"9").unwrap_err();
        assert!(matches!(err, ReadError::FrameTooLarge { limit: 8 }));
        // The offending byte was never buffered.
        assert_eq!(acc.partial_len(), 8);

        // A complete frame inside one oversized chunk also trips it.
        let mut acc = FrameAccumulator::new(8);
        let err = acc.extend(b"123456789\n").unwrap_err();
        assert!(matches!(err, ReadError::FrameTooLarge { limit: 8 }));
    }

    #[test]
    fn accumulator_limit_counts_the_frame_not_the_connection() {
        // Many small frames through one connection never trip the cap;
        // only a single frame over it does.
        let mut acc = FrameAccumulator::new(16);
        for _ in 0..100 {
            acc.extend(b"{\"op\":\"ping\"}\n").unwrap();
        }
        let mut frames = 0;
        while acc.next_message().unwrap().is_some() {
            frames += 1;
        }
        assert_eq!(frames, 100);
    }

    #[test]
    fn accumulator_reports_malformed_lines() {
        let mut acc = FrameAccumulator::new(TEST_LIMIT);
        acc.extend(b"not json\n").unwrap();
        assert!(matches!(acc.next_message(), Err(ReadError::Malformed(_))));
        // Invalid UTF-8 is malformed too, not a panic.
        let mut acc = FrameAccumulator::new(TEST_LIMIT);
        acc.extend(&[0xff, 0xfe, b'\n']).unwrap();
        assert!(matches!(acc.next_message(), Err(ReadError::Malformed(_))));
    }

    #[test]
    fn accumulator_zero_limit_means_unlimited() {
        let mut acc = FrameAccumulator::new(0);
        let big = vec![b'1'; 1024 * 1024];
        acc.extend(&big).unwrap();
        acc.extend(b"\n").unwrap();
        assert!(acc.next_message().unwrap().is_some());
    }
}
