//! A std-only batch mosaic server.
//!
//! Turns the library pipeline into a long-running service: clients
//! submit [`JobSpec`](photomosaic::JobSpec)s over a line-delimited JSON
//! TCP protocol ([`protocol`]), a bounded [`queue`] applies backpressure
//! (full queue → reject with a retry-after hint), a fixed worker pool
//! executes jobs, and an LRU [`cache`] reuses Step-2 error matrices
//! across submissions of the same content. [`metrics`] aggregates
//! per-job and lifetime counters, served by the `stats` request.
//!
//! Everything is `std`: `std::net` sockets, `std::thread` workers,
//! `std::sync::mpsc` replies — no external dependencies, matching the
//! offline-buildable workspace. On linux/x86_64 the default connection
//! front-end is an event-driven epoll readiness loop ([`FrontEnd`]),
//! built on a thin audited raw-syscall shim (the crate's only `unsafe`,
//! confined to the `epoll` module); everywhere else, and on request,
//! the original thread-per-connection front-end serves as the portable
//! oracle.
//!
//! # Example
//!
//! ```
//! use mosaic_service::client::Client;
//! use mosaic_service::protocol::Response;
//! use mosaic_service::server::{Server, ServiceConfig};
//! use mosaic_image::synth::Scene;
//! use photomosaic::{Backend, ImageSource, JobSpec, MosaicBuilder};
//!
//! let server = Server::start(ServiceConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//!
//! let spec = JobSpec {
//!     input: ImageSource::Synth { scene: Scene::Portrait, size: 16, seed: 1 },
//!     target: ImageSource::Synth { scene: Scene::Regatta, size: 16, seed: 2 },
//!     config: MosaicBuilder::new().grid(4).backend(Backend::Serial).build(),
//! };
//! let response = client.submit(&spec).unwrap();
//! assert!(matches!(response, Response::Result { .. }));
//!
//! client.shutdown().unwrap();
//! server.join();
//! ```

// `deny`, not `forbid`: the epoll shim below carries the crate's only
// audited `unsafe` (raw syscalls), scoped by an explicit module-level
// allow; everything else in the crate still refuses unsafe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
#[allow(unsafe_code)]
mod epoll;
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod event_loop;
pub mod fault;
pub mod gate;
pub mod metrics;
pub mod protocol;
pub mod queue;
pub mod server;

pub use cache::{CacheStats, MatrixCache};
pub use client::{run_load, Client, LoadSummary};
pub use fault::{
    disconnect_mid_frame, probe_oversized_frame, stalled_connection_is_closed, FaultPlan,
};
pub use gate::{ConnectionGate, ConnectionPermit};
pub use metrics::ServiceMetrics;
pub use protocol::{ReadError, Request, Response};
pub use queue::{JobQueue, PushError};
pub use server::{FrontEnd, Server, ServiceConfig};
