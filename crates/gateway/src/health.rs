//! Per-backend health as a pure state machine.
//!
//! ```text
//!            consecutive failures ≥ suspect_after
//!   Healthy ────────────────────────────────────▶ Suspect
//!      ▲                                            │
//!      │ any success                                │ failures ≥ down_after
//!      │                                            ▼
//!   Probing ◀──────── probe tick ────────────── Down
//!      │  probe ok → Healthy · probe fail → Down  ▲
//!      └──────────────────────────────────────────┘
//! ```
//!
//! `Healthy` and `Suspect` are *routable*: a suspect backend keeps
//! taking (and possibly failing) traffic until it crosses the `Down`
//! threshold, so one dropped packet never evicts a shard. `Down` and
//! `Probing` are not routed to; the probe thread owns the recovery
//! path. The transitions live here, free of sockets and clocks, so the
//! whole machine is unit-testable; the gateway drives one cell per
//! backend under a mutex.

/// Where a backend sits in the health lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendState {
    /// Serving normally.
    Healthy,
    /// Some consecutive failures; still routed, watched closely.
    Suspect,
    /// Considered dead: not routed, awaiting a probe.
    Down,
    /// A recovery probe is in flight; not routed until it succeeds.
    Probing,
}

impl BackendState {
    /// The wire word for this state (used in the `gateway` snapshot).
    pub fn name(self) -> &'static str {
        match self {
            BackendState::Healthy => "healthy",
            BackendState::Suspect => "suspect",
            BackendState::Down => "down",
            BackendState::Probing => "probing",
        }
    }
}

/// Thresholds for the state machine.
#[derive(Clone, Copy, Debug)]
pub struct HealthPolicy {
    /// Consecutive failures that turn Healthy into Suspect.
    pub suspect_after: u32,
    /// Consecutive failures that turn Suspect into Down.
    pub down_after: u32,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            suspect_after: 1,
            down_after: 3,
        }
    }
}

/// One backend's health cell: current state plus the consecutive-
/// failure streak that drives the transitions.
#[derive(Clone, Debug)]
pub struct HealthCell {
    state: BackendState,
    consecutive_failures: u32,
    policy: HealthPolicy,
}

impl HealthCell {
    /// A fresh, healthy cell.
    pub fn new(policy: HealthPolicy) -> HealthCell {
        HealthCell {
            state: BackendState::Healthy,
            consecutive_failures: 0,
            policy,
        }
    }

    /// The current state.
    pub fn state(&self) -> BackendState {
        self.state
    }

    /// The current consecutive-failure streak.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// Whether traffic may be routed here (Healthy or Suspect).
    pub fn is_routable(&self) -> bool {
        matches!(self.state, BackendState::Healthy | BackendState::Suspect)
    }

    /// A request (traffic or probe) succeeded: any state snaps back to
    /// Healthy and the failure streak resets. Success from `Down` or
    /// `Probing` is the traffic-driven recovery path — a last-resort
    /// routed job that happened to work revives the backend without
    /// waiting for the next probe tick.
    pub fn on_success(&mut self) {
        self.state = BackendState::Healthy;
        self.consecutive_failures = 0;
    }

    /// A routed request died on connect or mid-connection I/O. Counts
    /// toward the Suspect/Down thresholds; rejections (backpressure) do
    /// NOT come through here — a saturated backend is alive.
    pub fn on_failure(&mut self) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        self.state = match self.state {
            BackendState::Down | BackendState::Probing => BackendState::Down,
            _ if self.consecutive_failures >= self.policy.down_after => BackendState::Down,
            _ if self.consecutive_failures >= self.policy.suspect_after => BackendState::Suspect,
            unchanged => unchanged,
        };
    }

    /// The probe thread is about to test a Down backend. No-op from any
    /// other state (traffic may have revived it since the tick was
    /// scheduled).
    pub fn begin_probe(&mut self) {
        if self.state == BackendState::Down {
            self.state = BackendState::Probing;
        }
    }

    /// The probe finished: success re-admits the backend, failure sends
    /// it back to Down to wait for the next tick.
    pub fn on_probe_result(&mut self, ok: bool) {
        if ok {
            self.on_success();
        } else if self.state == BackendState::Probing {
            self.state = BackendState::Down;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell() -> HealthCell {
        HealthCell::new(HealthPolicy::default())
    }

    #[test]
    fn starts_healthy_and_routable() {
        let c = cell();
        assert_eq!(c.state(), BackendState::Healthy);
        assert!(c.is_routable());
    }

    #[test]
    fn failures_walk_healthy_suspect_down() {
        let mut c = cell();
        c.on_failure();
        assert_eq!(c.state(), BackendState::Suspect);
        assert!(c.is_routable(), "suspect backends still take traffic");
        c.on_failure();
        assert_eq!(c.state(), BackendState::Suspect);
        c.on_failure();
        assert_eq!(c.state(), BackendState::Down);
        assert!(!c.is_routable());
    }

    #[test]
    fn one_success_heals_any_streak() {
        let mut c = cell();
        for _ in 0..10 {
            c.on_failure();
        }
        assert_eq!(c.state(), BackendState::Down);
        c.on_success();
        assert_eq!(c.state(), BackendState::Healthy);
        assert_eq!(c.consecutive_failures(), 0);
        // The streak restarts from scratch afterwards.
        c.on_failure();
        assert_eq!(c.state(), BackendState::Suspect);
    }

    #[test]
    fn probe_cycle_recovers_or_returns_to_down() {
        let mut c = cell();
        for _ in 0..3 {
            c.on_failure();
        }
        c.begin_probe();
        assert_eq!(c.state(), BackendState::Probing);
        assert!(!c.is_routable(), "probing backends are not routed");
        c.on_probe_result(false);
        assert_eq!(c.state(), BackendState::Down);
        c.begin_probe();
        c.on_probe_result(true);
        assert_eq!(c.state(), BackendState::Healthy);
    }

    #[test]
    fn begin_probe_is_a_noop_unless_down() {
        let mut c = cell();
        c.begin_probe();
        assert_eq!(c.state(), BackendState::Healthy);
        c.on_failure();
        c.begin_probe();
        assert_eq!(c.state(), BackendState::Suspect);
    }

    #[test]
    fn failures_while_probing_keep_the_backend_down() {
        let mut c = cell();
        for _ in 0..3 {
            c.on_failure();
        }
        c.begin_probe();
        // A last-resort routed job failed while the probe was in flight.
        c.on_failure();
        assert_eq!(c.state(), BackendState::Down);
        // The stale probe's failure result cannot resurrect anything.
        c.on_probe_result(false);
        assert_eq!(c.state(), BackendState::Down);
    }

    #[test]
    fn custom_thresholds_are_honored() {
        let mut c = HealthCell::new(HealthPolicy {
            suspect_after: 2,
            down_after: 5,
        });
        c.on_failure();
        assert_eq!(c.state(), BackendState::Healthy, "below suspect_after");
        c.on_failure();
        assert_eq!(c.state(), BackendState::Suspect);
        for _ in 0..3 {
            c.on_failure();
        }
        assert_eq!(c.state(), BackendState::Down);
    }

    #[test]
    fn state_names_are_wire_stable() {
        assert_eq!(BackendState::Healthy.name(), "healthy");
        assert_eq!(BackendState::Suspect.name(), "suspect");
        assert_eq!(BackendState::Down.name(), "down");
        assert_eq!(BackendState::Probing.name(), "probing");
    }
}
