//! Gateway metrics, reported by the `stats` request (JSON) and the
//! `metrics` request (Prometheus text).
//!
//! Same discipline as `mosaic_service::metrics`: a private
//! `mosaic_telemetry::Registry` per gateway (integration tests run
//! several in one process), interned `Arc` handles so the hot routing
//! path records with relaxed atomics and never touches the registry
//! lock.

use mosaic_service::protocol::kinds;
use mosaic_telemetry::{Counter, Histogram, HistogramSummary, Registry};
use photomosaic::Json;
use std::sync::Arc;
use std::time::Duration;

/// Counters and the routing-latency histogram across the gateway's
/// lifetime.
pub struct GatewayMetrics {
    registry: Registry,
    routed: Arc<Counter>,
    failovers: Arc<Counter>,
    rejected: Arc<Counter>,
    probe_failures: Arc<Counter>,
    frames_too_large: Arc<Counter>,
    conns_rejected: Arc<Counter>,
    route_us: Arc<Histogram>,
}

impl Default for GatewayMetrics {
    fn default() -> Self {
        let registry = Registry::new();
        GatewayMetrics {
            routed: registry.counter("gateway_jobs_routed_total"),
            failovers: registry.counter("gateway_failovers_total"),
            rejected: registry.counter("gateway_jobs_rejected_total"),
            probe_failures: registry.counter("gateway_probe_failures_total"),
            frames_too_large: registry.counter("gateway_frames_too_large_total"),
            conns_rejected: registry.counter("gateway_connections_rejected_total"),
            route_us: registry.histogram("gateway_route_us"),
            registry,
        }
    }
}

impl GatewayMetrics {
    /// Fresh zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// A job was routed to a backend and answered; `elapsed` covers
    /// request receipt through backend response, failover hops included.
    pub fn job_routed(&self, elapsed: Duration) {
        self.routed.inc();
        self.route_us.record_duration_us(elapsed);
    }

    /// A job moved on to the next rendezvous choice after its current
    /// backend failed or rejected it.
    pub fn failover(&self) {
        self.failovers.inc();
    }

    /// A job was answered with a typed refusal (`rejected`,
    /// `backend_down`, or `no_backend_available`).
    pub fn job_refused(&self) {
        self.rejected.inc();
    }

    /// A health probe could not reach its backend.
    pub fn probe_failed(&self) {
        self.probe_failures.inc();
    }

    /// A client sent a frame over `max_frame_bytes` and was dropped.
    pub fn frame_too_large(&self) {
        self.frames_too_large.inc();
    }

    /// A client connection was refused because the gate was full.
    pub fn connection_rejected(&self) {
        self.conns_rejected.inc();
    }

    /// Jobs routed so far.
    pub fn routed(&self) -> u64 {
        self.routed.get()
    }

    /// Failover hops taken so far.
    pub fn failovers(&self) -> u64 {
        self.failovers.get()
    }

    /// Snapshot as the gateway's `stats` payload. Backend counts are
    /// sampled by the caller, which owns the health cells.
    pub fn snapshot(&self, backends_healthy: usize, backends_total: usize) -> Json {
        Json::obj([
            (
                "jobs",
                Json::obj([
                    ("routed", Json::from(self.routed.get())),
                    ("failovers", Json::from(self.failovers.get())),
                    (kinds::REJECTED, Json::from(self.rejected.get())),
                ]),
            ),
            (
                "backends",
                Json::obj([
                    ("healthy", Json::from(backends_healthy)),
                    ("total", Json::from(backends_total)),
                ]),
            ),
            ("route_us", summary_json(self.route_us.summary())),
            (
                "hardening",
                Json::obj([
                    ("probe_failures", Json::from(self.probe_failures.get())),
                    ("frames_too_large", Json::from(self.frames_too_large.get())),
                    (
                        "connections_rejected",
                        Json::from(self.conns_rejected.get()),
                    ),
                ]),
            ),
        ])
    }

    /// Prometheus text exposition, with the caller-sampled backend
    /// occupancy folded in as gauges.
    pub fn prometheus(&self, backends_healthy: usize, backends_total: usize) -> String {
        self.registry
            .gauge("gateway_backends_healthy")
            .set(backends_healthy as i64);
        self.registry
            .gauge("gateway_backends_total")
            .set(backends_total as i64);
        mosaic_telemetry::prometheus(&self.registry)
    }
}

fn summary_json(s: HistogramSummary) -> Json {
    Json::obj([
        ("count", Json::from(s.count)),
        ("sum", Json::from(s.sum)),
        ("min", Json::from(s.min)),
        ("max", Json::from(s.max)),
        ("p50", Json::from(s.p50)),
        ("p90", Json::from(s.p90)),
        ("p99", Json::from(s.p99)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_counters_flow_into_snapshot() {
        let m = GatewayMetrics::new();
        m.job_routed(Duration::from_micros(150));
        m.job_routed(Duration::from_micros(250));
        m.failover();
        m.job_refused();
        m.probe_failed();

        let snap = m.snapshot(2, 3);
        let jobs = snap.get("jobs").unwrap();
        assert_eq!(jobs.get("routed").unwrap().as_u64(), Some(2));
        assert_eq!(jobs.get("failovers").unwrap().as_u64(), Some(1));
        assert_eq!(jobs.get("rejected").unwrap().as_u64(), Some(1));
        let backends = snap.get("backends").unwrap();
        assert_eq!(backends.get("healthy").unwrap().as_u64(), Some(2));
        assert_eq!(backends.get("total").unwrap().as_u64(), Some(3));
        let route = snap.get("route_us").unwrap();
        assert_eq!(route.get("count").unwrap().as_u64(), Some(2));
        assert_eq!(route.get("sum").unwrap().as_u64(), Some(400));
        let hardening = snap.get("hardening").unwrap();
        assert_eq!(hardening.get("probe_failures").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn prometheus_exposes_all_gateway_metrics() {
        let m = GatewayMetrics::new();
        m.job_routed(Duration::from_micros(64));
        m.failover();
        m.job_refused();
        m.probe_failed();
        m.frame_too_large();
        m.connection_rejected();
        let text = m.prometheus(1, 2);
        assert!(text.contains("# TYPE gateway_jobs_routed_total counter"));
        assert!(text.contains("gateway_jobs_routed_total 1\n"));
        assert!(text.contains("gateway_failovers_total 1\n"));
        assert!(text.contains("gateway_jobs_rejected_total 1\n"));
        assert!(text.contains("gateway_probe_failures_total 1\n"));
        assert!(text.contains("gateway_frames_too_large_total 1\n"));
        assert!(text.contains("gateway_connections_rejected_total 1\n"));
        assert!(text.contains("# TYPE gateway_route_us histogram"));
        assert!(text.contains("gateway_route_us_sum 64\n"));
        assert!(text.contains("gateway_backends_healthy 1\n"));
        assert!(text.contains("gateway_backends_total 2\n"));
    }

    #[test]
    fn two_instances_do_not_share_state() {
        let a = GatewayMetrics::new();
        let b = GatewayMetrics::new();
        a.job_routed(Duration::from_micros(10));
        let snap = b.snapshot(0, 0);
        assert_eq!(
            snap.get("jobs").unwrap().get("routed").unwrap().as_u64(),
            Some(0)
        );
    }
}
