//! The gateway server: accepts client connections, routes each job to
//! a backend, proxies the response back.
//!
//! Thread structure (all plain `std::thread`):
//!
//! ```text
//! accept loop ──spawns──▶ connection handlers (one per client)
//!                              │ route_submit: pick backends in
//!                              │ rendezvous order, forward over a
//!                              ▼ fresh TCP connection per attempt
//!                        backend fleet (mosaic-service processes)
//!                              ▲
//! probe loop ── stats probes ──┘ (fan-out on the process pool)
//! ```
//!
//! The client side reuses the service crate's hardening primitives
//! verbatim: bounded framing ([`read_message`]), socket deadlines, and
//! the [`ConnectionGate`] admission cap. The backend side opens one
//! connection per attempt — jobs are pure functions of their spec, so
//! replaying a job on the next rendezvous choice after a mid-job
//! backend death is always safe.
//!
//! Failover semantics per job, up to `max_hops` distinct backends:
//!
//! * connect/IO failure → count a health failure, try the next choice;
//! * `rejected` (backpressure) → the backend is alive but saturated;
//!   try the next choice, and if every hop was saturated answer
//!   `rejected` so clients reuse their existing back-off;
//! * `error` → the backend is alive; retry elsewhere in case the
//!   failure was local (a draining backend), proxy the last error if
//!   every hop errors;
//! * anything else → proxy verbatim.
//!
//! When no backend is routable the gateway still attempts the top
//! rendezvous choice ("last resort"): live traffic then doubles as a
//! probe, so a fleet that was marked Down but has recovered starts
//! serving again without waiting for the probe tick. If even that
//! fails the client gets `no_backend_available`.

use crate::health::{BackendState, HealthCell, HealthPolicy};
use crate::metrics::GatewayMetrics;
use crate::routing::{backend_seed, rendezvous_order};
use mosaic_service::gate::ConnectionGate;
use mosaic_service::protocol::{kinds, read_message, write_message, ReadError, Request, Response};
use mosaic_telemetry::lock_unpoisoned;
use photomosaic::Json;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Backend responses larger than this are treated as protocol errors —
/// same generous-but-bounded ceiling the client crate uses.
const MAX_BACKEND_RESPONSE_BYTES: usize = 256 * 1024 * 1024;

/// How a job picks its backend.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Rendezvous (HRW) hashing on the spec's cache key: identical
    /// specs always land on the same backend, so its `MatrixCache`
    /// serves Step 2. The production policy.
    Rendezvous,
    /// Rotate through backends regardless of the spec. Spreads load but
    /// scatters cache affinity; exists as the control arm for affinity
    /// measurements and benches.
    RoundRobin,
}

impl RoutePolicy {
    /// The snapshot/CLI word for this policy.
    pub fn name(self) -> &'static str {
        match self {
            RoutePolicy::Rendezvous => "rendezvous",
            RoutePolicy::RoundRobin => "round-robin",
        }
    }

    /// Parse the words produced by [`name`](Self::name).
    pub fn parse(text: &str) -> Option<RoutePolicy> {
        match text {
            "rendezvous" => Some(RoutePolicy::Rendezvous),
            "round-robin" => Some(RoutePolicy::RoundRobin),
            _ => None,
        }
    }
}

/// Gateway tuning knobs. The hardening knobs treat `0` as "unlimited"
/// exactly like [`mosaic_service::ServiceConfig`].
#[derive(Clone, Debug)]
pub struct GatewayConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Backend addresses. Must be non-empty.
    pub backends: Vec<String>,
    /// Backend selection policy.
    pub policy: RoutePolicy,
    /// Back-off hint sent with every typed refusal.
    pub retry_after_ms: u64,
    /// Per-request frame cap for client connections (0 = unlimited).
    pub max_frame_bytes: usize,
    /// Socket deadline for client connections in ms (0 = none).
    pub io_timeout_ms: u64,
    /// Connect + socket deadline per backend attempt in ms (0 = none).
    pub backend_timeout_ms: u64,
    /// Concurrent client-connection cap (0 = unlimited).
    pub max_connections: usize,
    /// Distinct backends tried per job before giving up (min 1).
    pub max_hops: usize,
    /// Health-probe period in ms (0 disables the probe thread).
    pub probe_interval_ms: u64,
    /// Health state-machine thresholds.
    pub health: HealthPolicy,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            addr: "127.0.0.1:0".to_string(),
            backends: Vec::new(),
            policy: RoutePolicy::Rendezvous,
            retry_after_ms: 50,
            max_frame_bytes: 16 * 1024 * 1024,
            io_timeout_ms: 30_000,
            backend_timeout_ms: 10_000,
            max_connections: 64,
            max_hops: 2,
            probe_interval_ms: 500,
            health: HealthPolicy::default(),
        }
    }
}

/// One backend as the gateway sees it.
struct Backend {
    addr: String,
    health: Mutex<HealthCell>,
    /// Jobs this backend answered (success responses only).
    routed: AtomicU64,
}

struct Shared {
    config: GatewayConfig,
    backends: Vec<Backend>,
    /// Rendezvous identity seeds, index-parallel with `backends`.
    seeds: Vec<u64>,
    metrics: GatewayMetrics,
    gate: ConnectionGate,
    shutdown: AtomicBool,
    local_addr: SocketAddr,
    rr_cursor: AtomicUsize,
}

impl Shared {
    fn frame_limit(&self) -> usize {
        match self.config.max_frame_bytes {
            0 => usize::MAX,
            limit => limit,
        }
    }

    fn io_timeout(&self) -> Option<Duration> {
        match self.config.io_timeout_ms {
            0 => None,
            ms => Some(Duration::from_millis(ms)),
        }
    }

    fn backend_timeout(&self) -> Option<Duration> {
        match self.config.backend_timeout_ms {
            0 => None,
            ms => Some(Duration::from_millis(ms)),
        }
    }

    fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept() so it can observe the flag.
        let _ = TcpStream::connect(self.local_addr);
    }

    /// Backends currently routable (Healthy or Suspect) — what the
    /// `gateway_backends_healthy` gauge reports.
    fn routable_count(&self) -> usize {
        self.backends
            .iter()
            .filter(|b| lock_unpoisoned(&b.health).is_routable())
            .count()
    }

    /// Candidate indices for one job, best first, before health
    /// filtering.
    fn route_order(&self, key: u64) -> Vec<usize> {
        match self.config.policy {
            RoutePolicy::Rendezvous => rendezvous_order(&self.seeds, key),
            RoutePolicy::RoundRobin => {
                let n = self.backends.len();
                let start = self.rr_cursor.fetch_add(1, Ordering::Relaxed) % n.max(1);
                (0..n).map(|i| (start + i) % n).collect()
            }
        }
    }

    /// The `gateway` op payload: routing table plus per-backend health.
    fn info_json(&self) -> Json {
        let backends: Vec<Json> = self
            .backends
            .iter()
            .map(|backend| {
                let health = lock_unpoisoned(&backend.health);
                Json::obj([
                    ("addr", Json::from(backend.addr.as_str())),
                    ("state", Json::from(health.state().name())),
                    (
                        "consecutive_failures",
                        Json::from(u64::from(health.consecutive_failures())),
                    ),
                    ("routed", Json::from(backend.routed.load(Ordering::Relaxed))),
                ])
            })
            .collect();
        Json::obj([
            ("addr", Json::from(self.local_addr.to_string().as_str())),
            ("policy", Json::from(self.config.policy.name())),
            ("max_hops", Json::from(self.config.max_hops.max(1))),
            ("backends", Json::Arr(backends)),
        ])
    }
}

/// A running gateway. Dropping the handle does *not* stop it; call
/// [`shutdown`](Gateway::shutdown) (or send the `shutdown` request)
/// and then [`join`](Gateway::join).
pub struct Gateway {
    shared: Arc<Shared>,
    accept_handle: Option<JoinHandle<()>>,
    probe_handle: Option<JoinHandle<()>>,
}

impl Gateway {
    /// Bind and start the accept loop and (if enabled) the probe loop.
    ///
    /// # Errors
    /// Socket bind failures, or an empty backend list.
    pub fn start(config: GatewayConfig) -> std::io::Result<Gateway> {
        if config.backends.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "a gateway needs at least one backend",
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let backends: Vec<Backend> = config
            .backends
            .iter()
            .map(|addr| Backend {
                addr: addr.clone(),
                health: Mutex::new(HealthCell::new(config.health)),
                routed: AtomicU64::new(0),
            })
            .collect();
        let seeds: Vec<u64> = config.backends.iter().map(|a| backend_seed(a)).collect();
        let shared = Arc::new(Shared {
            gate: ConnectionGate::new(config.max_connections),
            config,
            backends,
            seeds,
            metrics: GatewayMetrics::new(),
            shutdown: AtomicBool::new(false),
            local_addr,
            rr_cursor: AtomicUsize::new(0),
        });

        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::Builder::new()
            .name("gateway-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_shared))?;

        let probe_handle = if shared.config.probe_interval_ms > 0 {
            let probe_shared = Arc::clone(&shared);
            match std::thread::Builder::new()
                .name("gateway-probe".to_string())
                .spawn(move || probe_loop(&probe_shared))
            {
                Ok(handle) => Some(handle),
                Err(e) => {
                    shared.begin_shutdown();
                    let _ = accept_handle.join();
                    return Err(e);
                }
            }
        } else {
            None
        };

        Ok(Gateway {
            shared,
            accept_handle: Some(accept_handle),
            probe_handle,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Trigger graceful shutdown. Idempotent; also triggered by the
    /// `shutdown` wire request.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Wait for the accept and probe loops to exit. Implies
    /// [`shutdown`](Gateway::shutdown) has been (or will be) triggered.
    pub fn join(mut self) {
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.probe_handle.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Some(permit) = shared.gate.try_acquire() else {
                    shared.metrics.connection_rejected();
                    let _ = stream.set_write_timeout(shared.io_timeout());
                    let _ = write_message(
                        &mut &stream,
                        &Response::Rejected {
                            retry_after_ms: shared.config.retry_after_ms,
                        }
                        .to_json(),
                    );
                    continue;
                };
                let shared = Arc::clone(shared);
                // Handlers are detached, exactly like the backend
                // server's; a failed spawn drops the closure and with it
                // the permit.
                let _ = std::thread::Builder::new()
                    .name("gateway-conn".to_string())
                    .spawn(move || {
                        let _permit = permit;
                        handle_connection(stream, &shared);
                    });
            }
            Err(_) if shared.shutdown.load(Ordering::SeqCst) => break,
            Err(_) => continue,
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    if let Some(timeout) = shared.io_timeout() {
        if stream.set_read_timeout(Some(timeout)).is_err()
            || stream.set_write_timeout(Some(timeout)).is_err()
        {
            return;
        }
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let message = match read_message(&mut reader, shared.frame_limit()) {
            Ok(Some(m)) => m,
            Ok(None) => return,
            Err(ReadError::FrameTooLarge { limit }) => {
                shared.metrics.frame_too_large();
                let _ = write_message(
                    &mut writer,
                    &Response::FrameTooLarge {
                        max_frame_bytes: limit as u64,
                    }
                    .to_json(),
                );
                return;
            }
            Err(ReadError::Malformed(problem)) => {
                let _ = write_message(&mut writer, &Response::Error { message: problem }.to_json());
                return;
            }
            Err(ReadError::Io(_)) => return,
        };
        let reply = match Request::from_json(&message) {
            Err(problem) => Response::Error { message: problem }.to_json(),
            Ok(Request::Ping) => Response::Pong.to_json(),
            Ok(Request::Stats) => Response::Stats {
                stats: shared
                    .metrics
                    .snapshot(shared.routable_count(), shared.backends.len()),
            }
            .to_json(),
            Ok(Request::Metrics) => Response::Metrics {
                text: shared
                    .metrics
                    .prometheus(shared.routable_count(), shared.backends.len()),
            }
            .to_json(),
            Ok(Request::GatewayInfo) => Response::Gateway {
                gateway: shared.info_json(),
            }
            .to_json(),
            Ok(Request::Shutdown) => {
                shared.begin_shutdown();
                Response::ShuttingDown.to_json()
            }
            Ok(Request::Submit(spec)) => {
                let key = spec.cache_key();
                route_submit(shared, &Request::Submit(spec), key)
            }
            Ok(Request::Library(spec)) => {
                let key = spec.cache_key();
                route_submit(shared, &Request::Library(spec), key)
            }
        };
        if write_message(&mut writer, &reply).is_err() {
            return;
        }
    }
}

/// What one forwarding attempt produced.
enum Attempt {
    /// A definitive response to proxy verbatim.
    Proxy(Json),
    /// The backend is alive but saturated (`rejected`).
    Saturated,
    /// The backend answered `error`; maybe local, retry elsewhere.
    Errored(Json),
    /// Connect or mid-connection I/O death.
    Dead,
}

/// Route one job request — generation or library — by its routing key:
/// walk the candidate list, forward, classify. For generation jobs the
/// key is the spec's cache key (backend `MatrixCache` affinity); for
/// library jobs it is the spec's routing key (store/target affinity —
/// backends never cache library results, but stable routing keeps one
/// backend's page cache warm for a given store).
fn route_submit(shared: &Arc<Shared>, request: &Request, key: u64) -> Json {
    let started = Instant::now();
    let order = shared.route_order(key);
    let routable: Vec<usize> = order
        .iter()
        .copied()
        .filter(|&i| lock_unpoisoned(&shared.backends[i].health).is_routable())
        .collect();
    // Last resort: with nothing routable, try the top choice anyway so
    // traffic doubles as a recovery probe.
    let last_resort = routable.is_empty();
    let candidates = if last_resort {
        order.first().copied().into_iter().collect()
    } else {
        routable
    };

    let mut saturated = false;
    let mut last_error: Option<Json> = None;
    let mut last_dead: Option<&str> = None;
    for (hop, &index) in candidates
        .iter()
        .take(shared.config.max_hops.max(1))
        .enumerate()
    {
        if hop > 0 {
            shared.metrics.failover();
        }
        let backend = &shared.backends[index];
        match forward(shared, backend, request) {
            Attempt::Proxy(json) => {
                lock_unpoisoned(&backend.health).on_success();
                backend.routed.fetch_add(1, Ordering::Relaxed);
                shared.metrics.job_routed(started.elapsed());
                return json;
            }
            Attempt::Saturated => {
                lock_unpoisoned(&backend.health).on_success();
                saturated = true;
            }
            Attempt::Errored(json) => {
                lock_unpoisoned(&backend.health).on_success();
                last_error = Some(json);
            }
            Attempt::Dead => {
                lock_unpoisoned(&backend.health).on_failure();
                last_dead = Some(backend.addr.as_str());
            }
        }
    }

    shared.metrics.job_refused();
    let retry_after_ms = shared.config.retry_after_ms;
    if saturated {
        // At least one backend is alive and will free up: the standard
        // backpressure shape keeps existing client back-off working.
        Response::Rejected { retry_after_ms }.to_json()
    } else if let Some(json) = last_error {
        json
    } else if last_resort {
        Response::NoBackendAvailable { retry_after_ms }.to_json()
    } else if let Some(backend) = last_dead {
        Response::BackendDown {
            backend: backend.to_string(),
            retry_after_ms,
        }
        .to_json()
    } else {
        // Unreachable in practice (candidates is never empty), but the
        // typed shape beats a panic if it ever is.
        Response::NoBackendAvailable { retry_after_ms }.to_json()
    }
}

/// Forward one job request to one backend over a fresh connection and
/// classify the outcome. The response JSON is kept raw so a proxied
/// result is byte-identical to a direct submission.
fn forward(shared: &Arc<Shared>, backend: &Backend, request: &Request) -> Attempt {
    match forward_io(shared, backend, request) {
        Ok(json) => match json.get("kind").and_then(Json::as_str) {
            Some(kinds::REJECTED) => Attempt::Saturated,
            Some(kinds::ERROR) => Attempt::Errored(json),
            _ => Attempt::Proxy(json),
        },
        Err(_) => Attempt::Dead,
    }
}

fn forward_io(shared: &Arc<Shared>, backend: &Backend, request: &Request) -> std::io::Result<Json> {
    let addr = resolve(&backend.addr)?;
    let stream = match shared.backend_timeout() {
        Some(timeout) => TcpStream::connect_timeout(&addr, timeout)?,
        None => TcpStream::connect(addr)?,
    };
    stream.set_read_timeout(shared.backend_timeout())?;
    stream.set_write_timeout(shared.backend_timeout())?;
    let mut writer = stream.try_clone()?;
    write_message(&mut writer, &request.to_json())?;
    let mut reader = BufReader::new(stream);
    read_message(&mut reader, MAX_BACKEND_RESPONSE_BYTES)
        .map_err(std::io::Error::from)?
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "backend closed mid-job")
        })
}

fn resolve(addr: &str) -> std::io::Result<SocketAddr> {
    addr.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "address resolved to nothing",
        )
    })
}

/// One stats round-trip against a backend; `true` on any valid reply.
fn probe_backend(shared: &Arc<Shared>, backend: &Backend) -> bool {
    let probe = || -> std::io::Result<()> {
        let addr = resolve(&backend.addr)?;
        let timeout = shared.backend_timeout().unwrap_or(Duration::from_secs(10));
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        let mut writer = stream.try_clone()?;
        write_message(&mut writer, &Request::Stats.to_json())?;
        let mut reader = BufReader::new(stream);
        read_message(&mut reader, MAX_BACKEND_RESPONSE_BYTES)
            .map_err(std::io::Error::from)?
            .ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "probe got EOF")
            })?;
        Ok(())
    };
    probe().is_ok()
}

/// Periodic health sweep. The loop paces itself on a dedicated thread;
/// each sweep fans the per-backend probes out on the process pool so a
/// hung backend (probe stuck until its timeout) does not serialize the
/// others.
fn probe_loop(shared: &Arc<Shared>) {
    let interval = Duration::from_millis(shared.config.probe_interval_ms);
    // Sleep in short slices so shutdown is observed promptly even with
    // long probe intervals.
    let slice = Duration::from_millis(20).min(interval);
    let mut elapsed = Duration::ZERO;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        std::thread::sleep(slice);
        elapsed += slice;
        if elapsed < interval {
            continue;
        }
        elapsed = Duration::ZERO;

        // Mark Down backends as Probing before the sweep so the router
        // keeps skipping them while the probe is in flight.
        for backend in &shared.backends {
            lock_unpoisoned(&backend.health).begin_probe();
        }
        let mut results: Vec<Option<bool>> = vec![None; shared.backends.len()];
        mosaic_pool::global().parallel_for_mut(&mut results, 1, |index, slot| {
            slot[0] = Some(probe_backend(shared, &shared.backends[index]));
        });
        for (backend, result) in shared.backends.iter().zip(results) {
            let ok = result.unwrap_or(false);
            if !ok {
                shared.metrics.probe_failed();
            }
            let mut health = lock_unpoisoned(&backend.health);
            match health.state() {
                BackendState::Probing => health.on_probe_result(ok),
                // Routable backends get the ordinary traffic rules: a
                // probe is just a tiny request.
                _ if ok => health.on_success(),
                _ => health.on_failure(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_policy_words_roundtrip() {
        for policy in [RoutePolicy::Rendezvous, RoutePolicy::RoundRobin] {
            assert_eq!(RoutePolicy::parse(policy.name()), Some(policy));
        }
        assert_eq!(RoutePolicy::parse("random"), None);
    }

    #[test]
    fn gateway_refuses_an_empty_backend_list() {
        match Gateway::start(GatewayConfig::default()) {
            Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::InvalidInput),
            Ok(_) => panic!("an empty backend list must not start"),
        }
    }

    #[test]
    fn round_robin_rotates_through_every_backend() {
        let shared = Shared {
            gate: ConnectionGate::new(0),
            config: GatewayConfig {
                backends: vec!["a".into(), "b".into(), "c".into()],
                policy: RoutePolicy::RoundRobin,
                ..GatewayConfig::default()
            },
            backends: ["a", "b", "c"]
                .iter()
                .map(|addr| Backend {
                    addr: addr.to_string(),
                    health: Mutex::new(HealthCell::new(HealthPolicy::default())),
                    routed: AtomicU64::new(0),
                })
                .collect(),
            seeds: vec![1, 2, 3],
            metrics: GatewayMetrics::new(),
            shutdown: AtomicBool::new(false),
            local_addr: "127.0.0.1:0".parse().unwrap(),
            rr_cursor: AtomicUsize::new(0),
        };
        // Same key every time; round-robin must still rotate the head.
        let heads: Vec<usize> = (0..6).map(|_| shared.route_order(9)[0]).collect();
        assert_eq!(heads, vec![0, 1, 2, 0, 1, 2]);
        // Every order is a permutation.
        let mut order = shared.route_order(9);
        order.sort_unstable();
        assert_eq!(order, vec![0, 1, 2]);
    }
}
