//! Rendezvous (highest-random-weight) routing as pure functions.
//!
//! Every routing decision is a deterministic function of two numbers:
//! the job's canonical key ([`photomosaic::JobSpec::cache_key`], which
//! hashes exactly the fields the backend's error-matrix cache keys on)
//! and each backend's identity seed (an FNV-1a hash of its address
//! string). That gives the three properties the gateway needs:
//!
//! * **determinism** — restarting the gateway, or running several
//!   gateways side by side, routes the same spec to the same backend,
//!   so `MatrixCache` affinity survives process boundaries;
//! * **minimal movement** — removing one of N backends remaps only the
//!   keys that lived on it (≈ S/N of S keys), because every other
//!   key's argmax score is untouched;
//! * **built-in failover order** — the full descending-score ranking is
//!   a per-key preference list, so "try the next rendezvous choice" is
//!   just the next index.

/// FNV-1a over a byte string; the backend identity hash. Stable across
/// process restarts by construction (it depends only on the address
/// text).
pub fn backend_seed(addr: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in addr.as_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// SplitMix64 finalizer: a full-avalanche 64-bit mixer, so one flipped
/// input bit flips ~half the output bits. This is what turns
/// `seed ^ key` into an independent per-(backend, key) weight.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The rendezvous weight of `(backend, key)`; the backend with the
/// highest score owns the key.
pub fn hrw_score(backend_seed: u64, key: u64) -> u64 {
    mix(backend_seed ^ mix(key))
}

/// Backend indices ranked by descending rendezvous score for `key` —
/// index 0 is the owner, the rest is the failover order. Ties (which
/// need colliding 64-bit scores) break toward the lower index, keeping
/// the order total and deterministic.
pub fn rendezvous_order(seeds: &[u64], key: u64) -> Vec<usize> {
    let mut ranked: Vec<(u64, usize)> = seeds
        .iter()
        .enumerate()
        .map(|(index, &seed)| (hrw_score(seed, key), index))
        .collect();
    ranked.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    ranked.into_iter().map(|(_, index)| index).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_image::synth::XorShift64;

    fn seeds(n: usize) -> Vec<u64> {
        (0..n)
            .map(|i| backend_seed(&format!("127.0.0.1:{}", 7700 + i)))
            .collect()
    }

    #[test]
    fn backend_seed_is_stable_text_hashing() {
        // Pinned value: the identity hash must never drift between
        // builds, or a rolling restart would reshuffle every key.
        assert_eq!(backend_seed(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(
            backend_seed("127.0.0.1:7733"),
            backend_seed("127.0.0.1:7733")
        );
        assert_ne!(
            backend_seed("127.0.0.1:7733"),
            backend_seed("127.0.0.1:7734")
        );
    }

    #[test]
    fn routing_is_deterministic_across_instances() {
        // Two independently-built seed tables (a "restarted process")
        // must produce identical rankings for every key.
        let a = seeds(5);
        let b = seeds(5);
        let mut rng = XorShift64::new(42);
        for _ in 0..500 {
            let key = rng.next_u64();
            assert_eq!(rendezvous_order(&a, key), rendezvous_order(&b, key));
        }
    }

    #[test]
    fn removing_a_backend_moves_only_its_keys() {
        // With N backends and S keys, dropping one backend must remap
        // only the keys it owned (expected S/N), and every remapped key
        // must land on its previous second choice.
        let all = seeds(5);
        let survivors = &all[..4]; // drop the last backend
        let mut rng = XorShift64::new(7);
        const S: usize = 2000;
        let mut moved = 0;
        for _ in 0..S {
            let key = rng.next_u64();
            let before = rendezvous_order(&all, key);
            let after = rendezvous_order(survivors, key);
            if before[0] == 4 {
                moved += 1;
                assert_eq!(after[0], before[1], "evicted keys go to the runner-up");
            } else {
                assert_eq!(after[0], before[0], "surviving owners keep their keys");
            }
        }
        // E[moved] = S/5 = 400; a generous band still proves "only its
        // share" rather than a full reshuffle.
        assert!(
            (200..=600).contains(&moved),
            "{moved} of {S} keys moved, expected about {}",
            S / 5
        );
    }

    #[test]
    fn ownership_is_roughly_uniform_for_3_to_8_backends() {
        let mut rng = XorShift64::new(1234);
        for n in 3..=8 {
            let table = seeds(n);
            let mut owned = vec![0usize; n];
            const S: usize = 4000;
            for _ in 0..S {
                let key = rng.next_u64();
                owned[rendezvous_order(&table, key)[0]] += 1;
            }
            let expected = S / n;
            for (index, &count) in owned.iter().enumerate() {
                assert!(
                    count > expected / 2 && count < expected * 2,
                    "n={n}: backend {index} owns {count} of {S} keys (expected ~{expected})"
                );
            }
        }
    }

    #[test]
    fn ranking_is_a_permutation_with_distinct_scores_first() {
        let table = seeds(8);
        let order = rendezvous_order(&table, 99);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>());
        // Scores along the ranking are non-increasing.
        let scores: Vec<u64> = order.iter().map(|&i| hrw_score(table[i], 99)).collect();
        assert!(scores.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn empty_backend_set_yields_an_empty_order() {
        assert!(rendezvous_order(&[], 5).is_empty());
    }
}
