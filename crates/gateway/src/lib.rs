//! A std-only sharded routing tier in front of a `mosaic-service`
//! fleet.
//!
//! The gateway speaks the existing line-JSON protocol on both sides:
//! clients connect to it exactly as they would to a single server, and
//! it forwards each job to one of N backends, proxying the response
//! back unchanged. Routing uses rendezvous (HRW) hashing on the job's
//! canonical cache key, so identical specs always land on the same
//! backend and its error-matrix `MatrixCache` keeps serving Step 2 —
//! the same affinity argument that makes the single-server cache
//! effective, extended across a fleet. A per-backend health state
//! machine (Healthy → Suspect → Down → probing recovery) driven by
//! connect/IO failures and periodic `stats` probes keeps dead backends
//! out of the routing order, and failover replays a job on its next
//! rendezvous choice up to a hop limit — safe because jobs are pure
//! functions of their spec.
//!
//! # Example
//!
//! ```
//! use mosaic_gateway::{Fleet, GatewayConfig};
//! use mosaic_service::client::Client;
//! use mosaic_service::protocol::Response;
//! use mosaic_service::server::ServiceConfig;
//! use mosaic_image::synth::Scene;
//! use photomosaic::{Backend, ImageSource, JobSpec, MosaicBuilder};
//!
//! let fleet = Fleet::start(
//!     vec![ServiceConfig::default(), ServiceConfig::default()],
//!     GatewayConfig::default(),
//! )
//! .unwrap();
//!
//! let spec = JobSpec {
//!     input: ImageSource::Synth { scene: Scene::Portrait, size: 16, seed: 1 },
//!     target: ImageSource::Synth { scene: Scene::Regatta, size: 16, seed: 2 },
//!     config: MosaicBuilder::new().grid(4).backend(Backend::Serial).build(),
//! };
//! let mut client = Client::connect(fleet.gateway_addr()).unwrap();
//! let response = client.submit(&spec).unwrap();
//! assert!(matches!(response, Response::Result { .. }));
//!
//! fleet.join();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fleet;
pub mod gateway;
pub mod health;
pub mod metrics;
pub mod routing;

pub use fleet::{Fleet, FleetCacheStats};
pub use gateway::{Gateway, GatewayConfig, RoutePolicy};
pub use health::{BackendState, HealthCell, HealthPolicy};
pub use metrics::GatewayMetrics;
pub use routing::{backend_seed, hrw_score, rendezvous_order};
