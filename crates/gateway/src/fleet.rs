//! An in-process fleet: N backend servers plus one gateway, wired
//! together on ephemeral ports. The harness behind the fleet fault
//! tests, the `fleet` bench suite, and the CLI `fleet` subcommand.
//!
//! Backends run in-process (threads, not child processes) so tests and
//! benches stay deterministic and sandbox-friendly, but everything
//! between the pieces travels over real TCP — the gateway cannot tell
//! the difference, and a backend "killed" via
//! [`FaultPlan::crash_first_jobs`](mosaic_service::FaultPlan::crash_first_jobs)
//! goes dark exactly like a dead process: connection severed mid-job,
//! listener closed, further connects refused.

use crate::gateway::{Gateway, GatewayConfig};
use mosaic_service::client::Client;
use mosaic_service::protocol::Response;
use mosaic_service::server::{Server, ServiceConfig};
use photomosaic::Json;
use std::net::SocketAddr;

/// Aggregate Step-2 matrix cache counters across a fleet.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FleetCacheStats {
    /// Cache hits summed over every reachable backend.
    pub hits: u64,
    /// Cache misses summed over every reachable backend.
    pub misses: u64,
}

/// A running fleet: backends plus the gateway in front of them.
pub struct Fleet {
    backends: Vec<Server>,
    gateway: Option<Gateway>,
    gateway_addr: SocketAddr,
}

impl Fleet {
    /// Start one backend per entry of `backend_configs` (each on its
    /// own ephemeral port unless the config pins one), then a gateway
    /// from `gateway_config` with its `backends` list replaced by the
    /// freshly bound addresses.
    ///
    /// # Errors
    /// Propagates bind/spawn failures; backends already started are
    /// shut down before the error surfaces.
    pub fn start(
        backend_configs: Vec<ServiceConfig>,
        gateway_config: GatewayConfig,
    ) -> std::io::Result<Fleet> {
        let mut backends: Vec<Server> = Vec::with_capacity(backend_configs.len());
        for config in backend_configs {
            match Server::start(config) {
                Ok(server) => backends.push(server),
                Err(e) => {
                    shutdown_servers(backends);
                    return Err(e);
                }
            }
        }
        let config = GatewayConfig {
            backends: backends
                .iter()
                .map(|server| server.local_addr().to_string())
                .collect(),
            ..gateway_config
        };
        match Gateway::start(config) {
            Ok(gateway) => Ok(Fleet {
                backends,
                gateway_addr: gateway.local_addr(),
                gateway: Some(gateway),
            }),
            Err(e) => {
                shutdown_servers(backends);
                Err(e)
            }
        }
    }

    /// The gateway's bound address — what clients connect to.
    pub fn gateway_addr(&self) -> SocketAddr {
        self.gateway_addr
    }

    /// How many backends the fleet was started with.
    pub fn backend_count(&self) -> usize {
        self.backends.len()
    }

    /// The bound address of backend `index`.
    pub fn backend_addr(&self, index: usize) -> SocketAddr {
        self.backends[index].local_addr()
    }

    /// Sum the `MatrixCache` hit/miss counters over every backend that
    /// still answers `stats`; dead backends contribute nothing.
    pub fn aggregate_cache_stats(&self) -> FleetCacheStats {
        let mut total = FleetCacheStats::default();
        for server in &self.backends {
            let Ok(mut client) = Client::connect(server.local_addr()) else {
                continue;
            };
            let Ok(Response::Stats { stats }) = client.stats() else {
                continue;
            };
            let field = |name: &str| {
                stats
                    .get("cache")
                    .and_then(|cache| cache.get(name))
                    .and_then(Json::as_u64)
                    .unwrap_or(0)
            };
            total.hits += field("hits");
            total.misses += field("misses");
        }
        total
    }

    /// Trigger graceful shutdown of the gateway and every backend.
    pub fn shutdown(&self) {
        if let Some(gateway) = &self.gateway {
            gateway.shutdown();
        }
        for server in &self.backends {
            server.shutdown();
        }
    }

    /// Block until the gateway is shut down — by a wire `shutdown`
    /// request or a prior [`shutdown`](Fleet::shutdown) call — then stop
    /// and join the backends. The CLI `fleet` command's main loop.
    pub fn serve(mut self) {
        if let Some(gateway) = self.gateway.take() {
            gateway.join();
        }
        shutdown_servers(std::mem::take(&mut self.backends));
    }

    /// Shut everything down and wait for all threads to exit.
    pub fn join(mut self) {
        self.shutdown();
        if let Some(gateway) = self.gateway.take() {
            gateway.join();
        }
        for server in self.backends.drain(..) {
            server.join();
        }
    }
}

fn shutdown_servers(servers: Vec<Server>) {
    for server in &servers {
        server.shutdown();
    }
    for server in servers {
        server.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_service::protocol::Request;

    #[test]
    fn fleet_starts_routes_and_joins() {
        let fleet = Fleet::start(
            vec![ServiceConfig::default(), ServiceConfig::default()],
            GatewayConfig::default(),
        )
        .unwrap();
        assert_eq!(fleet.backend_count(), 2);
        let mut client = Client::connect(fleet.gateway_addr()).unwrap();
        assert_eq!(client.ping().unwrap(), Response::Pong);
        let Response::Gateway { gateway } = client.request(&Request::GatewayInfo).unwrap() else {
            panic!("expected a gateway snapshot");
        };
        let backends = gateway.get("backends").unwrap();
        let Json::Arr(entries) = backends else {
            panic!("expected a backend array");
        };
        assert_eq!(entries.len(), 2);
        for entry in entries {
            assert_eq!(entry.get("state").unwrap().as_str(), Some("healthy"));
        }
        fleet.join();
    }

    #[test]
    fn fresh_fleet_has_zero_cache_traffic() {
        let fleet = Fleet::start(vec![ServiceConfig::default()], GatewayConfig::default()).unwrap();
        assert_eq!(fleet.aggregate_cache_stats(), FleetCacheStats::default());
        fleet.join();
    }
}
