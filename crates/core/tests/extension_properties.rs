//! Property tests for the extension modules (oriented placement,
//! hierarchical solving) over random tiled images, driven by the
//! deterministic [`mosaic_image::testutil`] PRNG (ported from the former
//! `proptest` suite; every case reproduces from the printed seed).

use mosaic_grid::{build_error_matrix, TileLayout, TileMetric};
use mosaic_image::testutil::{gray_image, XorShift};
use mosaic_image::{Gray, Image};
use photomosaic::multires::{hierarchical_rearrangement, MultiresConfig};
use photomosaic::oriented::{build_oriented_error_matrix, Orientation};

/// Random image pair whose grid is leaf * 2^k (leaf = 2), so the
/// hierarchical solver always accepts it.
fn arb_pair(rng: &mut XorShift) -> (Image<Gray>, Image<Gray>, TileLayout) {
    let doublings = rng.range(1, 2) as u32;
    let tile = rng.range(2, 4);
    let grid = 2usize << doublings; // 4 or 8
    let n = grid * tile;
    (
        gray_image(rng, n, n),
        gray_image(rng, n, n),
        TileLayout::new(n, tile).unwrap(),
    )
}

#[test]
fn oriented_entries_pointwise_dominate_plain() {
    for seed in 0..12 {
        let mut rng = XorShift::new(seed);
        let (input, target, layout) = arb_pair(&mut rng);
        let plain = build_error_matrix(&input, &target, layout, TileMetric::Sad).unwrap();
        let oriented = build_oriented_error_matrix(
            &input,
            &target,
            layout,
            TileMetric::Sad,
            &Orientation::ALL,
        )
        .unwrap();
        let s = plain.size();
        for u in 0..s {
            for v in 0..s {
                assert!(oriented.matrix.get(u, v) <= plain.get(u, v), "seed {seed}");
            }
        }
        // The recorded best orientation actually achieves the stored value.
        for u in 0..s {
            let base = layout.tile_view(&input, u).to_image();
            for v in 0..s {
                let o = oriented.best[u * s + v];
                let transformed = o.apply(&base);
                let direct = mosaic_grid::tile_error(
                    &transformed.full_view(),
                    &layout.tile_view(&target, v),
                    TileMetric::Sad,
                );
                assert_eq!(direct as u32, oriented.matrix.get(u, v), "seed {seed}");
            }
        }
    }
}

#[test]
fn orientation_apply_is_a_group_action() {
    // Applying R180 twice is the identity; R90 four times is the
    // identity; flips are involutions.
    for seed in 0..12 {
        let mut rng = XorShift::new(seed);
        let (input, _t, layout) = arb_pair(&mut rng);
        let tile = layout.tile_view(&input, 0).to_image();
        assert_eq!(
            Orientation::R180.apply(&Orientation::R180.apply(&tile)),
            tile.clone(),
            "seed {seed}"
        );
        let mut r = tile.clone();
        for _ in 0..4 {
            r = Orientation::R90.apply(&r);
        }
        assert_eq!(r, tile.clone(), "seed {seed}");
        assert_eq!(
            Orientation::FlipH.apply(&Orientation::FlipH.apply(&tile)),
            tile.clone(),
            "seed {seed}"
        );
        assert_eq!(
            Orientation::Transpose.apply(&Orientation::Transpose.apply(&tile)),
            tile,
            "seed {seed}"
        );
    }
}

#[test]
fn hierarchical_assignment_is_valid_and_bounded() {
    for seed in 0..12 {
        let mut rng = XorShift::new(seed);
        let (input, target, layout) = arb_pair(&mut rng);
        let config = MultiresConfig {
            leaf_grid: 2,
            metric: TileMetric::Sad,
        };
        let out = hierarchical_rearrangement(&input, &target, layout, config).unwrap();
        assert!(
            mosaic_grid::assemble::is_permutation(&out.assignment, layout.tile_count()),
            "seed {seed}"
        );
        let matrix = build_error_matrix(&input, &target, layout, TileMetric::Sad).unwrap();
        assert_eq!(
            out.total,
            matrix.assignment_total(&out.assignment),
            "seed {seed}"
        );
        // Never worse than leaving the tiles in place (the identity is in
        // the hierarchy's search space at every level).
        let identity: Vec<usize> = (0..layout.tile_count()).collect();
        assert!(
            out.total <= matrix.assignment_total(&identity),
            "seed {seed}"
        );
    }
}
