//! Property tests for the extension modules (oriented placement,
//! hierarchical solving) over random tiled images.

use mosaic_grid::{build_error_matrix, TileLayout, TileMetric};
use mosaic_image::{Gray, Image};
use photomosaic::multires::{hierarchical_rearrangement, MultiresConfig};
use photomosaic::oriented::{build_oriented_error_matrix, Orientation};
use proptest::prelude::*;

/// Random image pair whose grid is leaf * 2^k (leaf = 2), so the
/// hierarchical solver always accepts it.
fn arb_pair() -> impl Strategy<Value = (Image<Gray>, Image<Gray>, TileLayout)> {
    (1u32..=2, 2usize..=4).prop_flat_map(|(doublings, tile)| {
        let grid = 2usize << doublings; // 4 or 8
        let n = grid * tile;
        (
            proptest::collection::vec(any::<u8>(), n * n),
            proptest::collection::vec(any::<u8>(), n * n),
        )
            .prop_map(move |(a, b)| {
                (
                    Image::from_vec(n, n, a.into_iter().map(Gray).collect()).unwrap(),
                    Image::from_vec(n, n, b.into_iter().map(Gray).collect()).unwrap(),
                    TileLayout::new(n, tile).unwrap(),
                )
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn oriented_entries_pointwise_dominate_plain((input, target, layout) in arb_pair()) {
        let plain = build_error_matrix(&input, &target, layout, TileMetric::Sad).unwrap();
        let oriented = build_oriented_error_matrix(
            &input,
            &target,
            layout,
            TileMetric::Sad,
            &Orientation::ALL,
        )
        .unwrap();
        let s = plain.size();
        for u in 0..s {
            for v in 0..s {
                prop_assert!(oriented.matrix.get(u, v) <= plain.get(u, v));
            }
        }
        // The recorded best orientation actually achieves the stored value.
        for u in 0..s {
            let base = layout.tile_view(&input, u).to_image();
            for v in 0..s {
                let o = oriented.best[u * s + v];
                let transformed = o.apply(&base);
                let direct = mosaic_grid::tile_error(
                    &transformed.full_view(),
                    &layout.tile_view(&target, v),
                    TileMetric::Sad,
                );
                prop_assert_eq!(direct as u32, oriented.matrix.get(u, v));
            }
        }
    }

    #[test]
    fn orientation_apply_is_a_group_action((input, _t, layout) in arb_pair()) {
        // Applying R180 twice is the identity; R90 four times is the
        // identity; flips are involutions.
        let tile = layout.tile_view(&input, 0).to_image();
        prop_assert_eq!(
            Orientation::R180.apply(&Orientation::R180.apply(&tile)),
            tile.clone()
        );
        let mut r = tile.clone();
        for _ in 0..4 {
            r = Orientation::R90.apply(&r);
        }
        prop_assert_eq!(r, tile.clone());
        prop_assert_eq!(
            Orientation::FlipH.apply(&Orientation::FlipH.apply(&tile)),
            tile.clone()
        );
        prop_assert_eq!(
            Orientation::Transpose.apply(&Orientation::Transpose.apply(&tile)),
            tile
        );
    }

    #[test]
    fn hierarchical_assignment_is_valid_and_bounded((input, target, layout) in arb_pair()) {
        let config = MultiresConfig {
            leaf_grid: 2,
            metric: TileMetric::Sad,
        };
        let out = hierarchical_rearrangement(&input, &target, layout, config).unwrap();
        prop_assert!(mosaic_grid::assemble::is_permutation(
            &out.assignment,
            layout.tile_count()
        ));
        let matrix = build_error_matrix(&input, &target, layout, TileMetric::Sad).unwrap();
        prop_assert_eq!(out.total, matrix.assignment_total(&out.assignment));
        // Never worse than leaving the tiles in place (the identity is in
        // the hierarchy's search space at every level).
        let identity: Vec<usize> = (0..layout.tile_count()).collect();
        prop_assert!(out.total <= matrix.assignment_total(&identity));
    }
}
