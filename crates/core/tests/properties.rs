//! Property-based tests on the core algorithms, driven by the
//! deterministic [`mosaic_image::testutil`] PRNG (ported from the former
//! `proptest` suite; every case reproduces from the printed seed).

use mosaic_assign::SolverKind;
use mosaic_edgecolor::SwapSchedule;
use mosaic_grid::ErrorMatrix;
use mosaic_image::testutil::XorShift;
use photomosaic::anneal::anneal_search;
use photomosaic::local_search::{is_swap_optimal, local_search, local_search_from};
use photomosaic::optimal::optimal_rearrangement;
use photomosaic::parallel_search::{parallel_search_reference, parallel_search_threads};

fn arb_matrix(rng: &mut XorShift, max_n: usize, max_cost: u32) -> ErrorMatrix {
    let n = rng.range(2, max_n);
    let data: Vec<u32> = (0..n * n)
        .map(|_| rng.next_u32() % (max_cost + 1))
        .collect();
    ErrorMatrix::from_vec(n, data)
}

#[test]
fn local_search_reaches_swap_optimum() {
    for seed in 0..24 {
        let mut rng = XorShift::new(seed);
        let m = arb_matrix(&mut rng, 20, 10_000);
        let out = local_search(&m);
        assert!(is_swap_optimal(&m, &out.assignment), "seed {seed}");
        assert_eq!(
            out.total,
            m.assignment_total(&out.assignment),
            "seed {seed}"
        );
    }
}

#[test]
fn parallel_search_reaches_swap_optimum() {
    for seed in 0..24 {
        let mut rng = XorShift::new(seed);
        let m = arb_matrix(&mut rng, 20, 10_000);
        let sched = SwapSchedule::for_tiles(m.size());
        let out = parallel_search_reference(&m, &sched);
        assert!(is_swap_optimal(&m, &out.outcome.assignment), "seed {seed}");
    }
}

#[test]
fn threads_match_reference() {
    for seed in 0..24 {
        let mut rng = XorShift::new(seed);
        let m = arb_matrix(&mut rng, 16, 5_000);
        let threads = rng.range(1, 5);
        let sched = SwapSchedule::for_tiles(m.size());
        assert_eq!(
            parallel_search_threads(&m, &sched, threads),
            parallel_search_reference(&m, &sched),
            "seed {seed}"
        );
    }
}

#[test]
fn optimal_lower_bounds_every_heuristic() {
    for seed in 0..16 {
        let mut rng = XorShift::new(seed);
        let m = arb_matrix(&mut rng, 14, 5_000);
        let opt = optimal_rearrangement(&m, SolverKind::JonkerVolgenant).total;
        assert!(local_search(&m).total >= opt, "seed {seed}");
        let sched = SwapSchedule::for_tiles(m.size());
        assert!(
            parallel_search_reference(&m, &sched).outcome.total >= opt,
            "seed {seed}"
        );
        assert!(anneal_search(&m, 9, 3).total >= opt, "seed {seed}");
        assert!(
            optimal_rearrangement(&m, SolverKind::Greedy).total >= opt,
            "seed {seed}"
        );
    }
}

#[test]
fn search_never_worse_than_its_start() {
    for seed in 0..24 {
        let mut rng = XorShift::new(seed);
        let m = arb_matrix(&mut rng, 14, 5_000);
        let perm = rng.permutation(m.size());
        let start_total = m.assignment_total(&perm);
        let out = local_search_from(&m, perm);
        assert!(out.total <= start_total, "seed {seed}");
    }
}

#[test]
fn anneal_is_deterministic_per_seed() {
    for seed in 0..24 {
        let mut rng = XorShift::new(seed);
        let m = arb_matrix(&mut rng, 10, 1_000);
        let anneal_seed = rng.next_u64();
        assert_eq!(
            anneal_search(&m, anneal_seed, 2),
            anneal_search(&m, anneal_seed, 2),
            "seed {seed}"
        );
    }
}

#[test]
fn exact_solvers_agree_via_pipeline_reduction() {
    for seed in 0..24 {
        let mut rng = XorShift::new(seed);
        let m = arb_matrix(&mut rng, 12, 100_000);
        let a = optimal_rearrangement(&m, SolverKind::Hungarian).total;
        let b = optimal_rearrangement(&m, SolverKind::JonkerVolgenant).total;
        let c = optimal_rearrangement(&m, SolverKind::Auction).total;
        assert_eq!(a, b, "seed {seed}");
        assert_eq!(a, c, "seed {seed}");
    }
}
