//! Property-based tests on the core algorithms.

use mosaic_edgecolor::SwapSchedule;
use mosaic_grid::ErrorMatrix;
use photomosaic::anneal::anneal_search;
use photomosaic::local_search::{is_swap_optimal, local_search, local_search_from};
use photomosaic::optimal::optimal_rearrangement;
use photomosaic::parallel_search::{parallel_search_reference, parallel_search_threads};
use mosaic_assign::SolverKind;
use proptest::prelude::*;

fn arb_matrix(max_n: usize, max_cost: u32) -> impl Strategy<Value = ErrorMatrix> {
    (2..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec(0..=max_cost, n * n)
            .prop_map(move |v| ErrorMatrix::from_vec(n, v))
    })
}

proptest! {
    #[test]
    fn local_search_reaches_swap_optimum(m in arb_matrix(20, 10_000)) {
        let out = local_search(&m);
        prop_assert!(is_swap_optimal(&m, &out.assignment));
        prop_assert_eq!(out.total, m.assignment_total(&out.assignment));
    }

    #[test]
    fn parallel_search_reaches_swap_optimum(m in arb_matrix(20, 10_000)) {
        let sched = SwapSchedule::for_tiles(m.size());
        let out = parallel_search_reference(&m, &sched);
        prop_assert!(is_swap_optimal(&m, &out.outcome.assignment));
    }

    #[test]
    fn threads_match_reference(m in arb_matrix(16, 5_000), threads in 1usize..6) {
        let sched = SwapSchedule::for_tiles(m.size());
        prop_assert_eq!(
            parallel_search_threads(&m, &sched, threads),
            parallel_search_reference(&m, &sched)
        );
    }

    #[test]
    fn optimal_lower_bounds_every_heuristic(m in arb_matrix(14, 5_000)) {
        let opt = optimal_rearrangement(&m, SolverKind::JonkerVolgenant).total;
        prop_assert!(local_search(&m).total >= opt);
        let sched = SwapSchedule::for_tiles(m.size());
        prop_assert!(parallel_search_reference(&m, &sched).outcome.total >= opt);
        prop_assert!(anneal_search(&m, 9, 3).total >= opt);
        prop_assert!(optimal_rearrangement(&m, SolverKind::Greedy).total >= opt);
    }

    #[test]
    fn search_never_worse_than_its_start(m in arb_matrix(14, 5_000), seed in any::<u64>()) {
        // Random start permutation via Fisher-Yates.
        let n = m.size();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut state = seed | 1;
        for i in (1..n).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            perm.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let start_total = m.assignment_total(&perm);
        let out = local_search_from(&m, perm);
        prop_assert!(out.total <= start_total);
    }

    #[test]
    fn anneal_is_deterministic_per_seed(m in arb_matrix(10, 1_000), seed in any::<u64>()) {
        prop_assert_eq!(anneal_search(&m, seed, 2), anneal_search(&m, seed, 2));
    }

    #[test]
    fn exact_solvers_agree_via_pipeline_reduction(m in arb_matrix(12, 100_000)) {
        let a = optimal_rearrangement(&m, SolverKind::Hungarian).total;
        let b = optimal_rearrangement(&m, SolverKind::JonkerVolgenant).total;
        let c = optimal_rearrangement(&m, SolverKind::Auction).total;
        prop_assert_eq!(a, b);
        prop_assert_eq!(a, c);
    }
}
