//! Frame-sequence (video) mosaics — the real-time use case motivating the
//! paper's GPU work (§III cites interactive [16] and real-time video
//! photomosaic systems [17][18]).
//!
//! A [`VideoMosaicSession`] fixes the input image and grid once, then
//! generates a mosaic per target frame while reusing everything reusable:
//!
//! * the edge-coloring [`SwapSchedule`] ("we assume that the number of
//!   tiles S is fixed and edge groups … are computed in advance" — §IV-B);
//! * the simulated device instance;
//! * the previous frame's assignment as the local search's warm start —
//!   consecutive frames are similar, so far fewer sweeps are needed than
//!   from the identity arrangement.

use crate::config::{Backend, Preprocess};
use crate::errors::compute_error_matrix;
use crate::local_search::{local_search_from, SearchOutcome};
use crate::preprocess::preprocess_gray;
use mosaic_edgecolor::SwapSchedule;
use mosaic_grid::{assemble, LayoutError, TileLayout, TileMetric};
use mosaic_image::GrayImage;
use std::time::{Duration, Instant};

/// Per-frame accounting.
#[derive(Clone, Debug)]
pub struct FrameReport {
    /// Frame index within the session.
    pub frame: usize,
    /// Total error of the frame's rearrangement.
    pub total_error: u64,
    /// Local-search sweeps this frame needed.
    pub sweeps: usize,
    /// Swaps performed this frame.
    pub swaps: usize,
    /// Wall time of the frame (Step 2 + Step 3 + assembly).
    pub wall: Duration,
}

/// Reusable state for mosaicking a stream of target frames against one
/// input image.
pub struct VideoMosaicSession {
    input: GrayImage,
    layout: TileLayout,
    metric: TileMetric,
    backend: Backend,
    preprocess: Preprocess,
    schedule: SwapSchedule,
    previous: Option<Vec<usize>>,
    frames: usize,
}

impl VideoMosaicSession {
    /// Create a session for `input` with `grid × grid` tiles.
    ///
    /// `backend` applies to Step 2 (the per-frame error matrix); Step 3 is
    /// always the warm-started serial descent, which converges in very few
    /// sweeps on correlated frames and is the session's whole point —
    /// use [`crate::generate`] per frame if you want Algorithm 2 instead.
    ///
    /// # Errors
    /// Returns [`LayoutError`] when `input` is not square or not divisible
    /// by the grid.
    pub fn new(
        input: GrayImage,
        grid: usize,
        metric: TileMetric,
        backend: Backend,
        preprocess: Preprocess,
    ) -> Result<Self, LayoutError> {
        let (w, h) = input.dimensions();
        if w != h {
            return Err(LayoutError::NotSquare {
                width: w,
                height: h,
            });
        }
        let layout = TileLayout::with_grid(w, grid)?;
        layout.check_image(&input)?;
        let schedule = SwapSchedule::for_tiles(layout.tile_count());
        Ok(VideoMosaicSession {
            input,
            layout,
            metric,
            backend,
            preprocess,
            schedule,
            previous: None,
            frames: 0,
        })
    }

    /// The precomputed swap schedule (exposed for inspection/tests).
    pub fn schedule(&self) -> &SwapSchedule {
        &self.schedule
    }

    /// Number of frames generated so far.
    pub fn frames_generated(&self) -> usize {
        self.frames
    }

    /// Drop the warm start (the next frame searches from identity).
    pub fn reset_warm_start(&mut self) {
        self.previous = None;
    }

    /// Generate the mosaic for the next target frame.
    ///
    /// # Errors
    /// Returns [`LayoutError`] when `target` does not match the session
    /// geometry.
    pub fn next_frame(
        &mut self,
        target: &GrayImage,
    ) -> Result<(GrayImage, FrameReport), LayoutError> {
        self.layout.check_image(target)?;
        let start = Instant::now();
        let prepared = preprocess_gray(&self.input, target, self.preprocess);
        let (matrix, _) =
            compute_error_matrix(&prepared, target, self.layout, self.metric, self.backend)?;
        let warm = self
            .previous
            .clone()
            .unwrap_or_else(|| (0..self.layout.tile_count()).collect());
        let outcome: SearchOutcome = local_search_from(&matrix, warm);
        let image = assemble(&prepared, self.layout, &outcome.assignment)?;
        self.previous = Some(outcome.assignment);
        let report = FrameReport {
            frame: self.frames,
            total_error: outcome.total,
            sweeps: outcome.sweeps,
            swaps: outcome.swaps,
            wall: start.elapsed(),
        };
        self.frames += 1;
        Ok((image, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_image::{synth, Gray, Image};

    /// A slowly panning target: frame t is the base scene shifted by t
    /// pixels (wrapping), so consecutive frames are highly correlated.
    fn panning_frames(base: &GrayImage, count: usize) -> Vec<GrayImage> {
        let n = base.width();
        (0..count)
            .map(|t| Image::from_fn(n, n, |x, y| base.pixel((x + 2 * t) % n, y)).unwrap())
            .collect()
    }

    fn session(n: usize, grid: usize) -> VideoMosaicSession {
        VideoMosaicSession::new(
            synth::plasma(n, 4, 3),
            grid,
            TileMetric::Sad,
            Backend::Serial,
            Preprocess::MatchTarget,
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_geometry() {
        let tall = Image::from_fn(16, 32, |_, _| Gray(0)).unwrap();
        assert!(VideoMosaicSession::new(
            tall,
            4,
            TileMetric::Sad,
            Backend::Serial,
            Preprocess::None
        )
        .is_err());
        let ok = session(32, 4);
        assert_eq!(ok.schedule().tiles(), 16);
        assert_eq!(ok.frames_generated(), 0);
    }

    #[test]
    fn frames_are_generated_and_counted() {
        let mut s = session(32, 4);
        let base = synth::regatta(32, 7);
        for (i, frame) in panning_frames(&base, 3).iter().enumerate() {
            let (img, report) = s.next_frame(frame).unwrap();
            assert_eq!(img.dimensions(), (32, 32));
            assert_eq!(report.frame, i);
            assert!(report.sweeps >= 1);
        }
        assert_eq!(s.frames_generated(), 3);
    }

    #[test]
    fn warm_start_reduces_work_on_similar_frames() {
        let mut s = session(64, 8);
        let base = synth::regatta(64, 7);
        let frames = panning_frames(&base, 4);
        let mut swaps = Vec::new();
        for frame in &frames {
            let (_, report) = s.next_frame(frame).unwrap();
            swaps.push(report.swaps);
        }
        // The first frame searches from identity; later frames start from
        // the previous solution and should need fewer swaps.
        let later_max = *swaps[1..].iter().max().unwrap();
        assert!(
            later_max <= swaps[0],
            "warm start did not help: first={} later={swaps:?}",
            swaps[0]
        );
    }

    #[test]
    fn reset_warm_start_restores_cold_behavior() {
        let mut s = session(32, 4);
        let target = synth::fur(32, 3);
        let (_, first) = s.next_frame(&target).unwrap();
        let (_, warm) = s.next_frame(&target).unwrap();
        // Identical frame + warm start: solution already optimal, so one
        // confirming sweep and no swaps.
        assert_eq!(warm.swaps, 0);
        s.reset_warm_start();
        let (_, cold) = s.next_frame(&target).unwrap();
        assert_eq!(cold.swaps, first.swaps, "cold restart should redo the work");
    }

    #[test]
    fn mismatched_frame_is_an_error() {
        let mut s = session(32, 4);
        let wrong = synth::gradient(64);
        assert!(s.next_frame(&wrong).is_err());
    }

    #[test]
    fn frame_quality_matches_one_shot_pipeline() {
        let mut s = session(32, 4);
        let target = synth::drapery(32, 6);
        let (_, report) = s.next_frame(&target).unwrap();
        let one_shot = crate::pipeline::generate(
            &synth::plasma(32, 4, 3),
            &target,
            &crate::config::MosaicBuilder::new()
                .grid(4)
                .algorithm(crate::config::Algorithm::LocalSearch)
                .backend(Backend::Serial)
                .build(),
        )
        .unwrap();
        assert_eq!(report.total_error, one_shot.report.total_error);
    }
}
