//! Mosaic assembly from an external tile set.
//!
//! The paper's pipeline rearranges the target's *own* subimages, so its
//! assembly step (`mosaic_grid::assemble`) demands a permutation. The
//! tile-library workload is different: `T ≥ S` tiles compete for `S`
//! cells and the assignment is merely *injective* — most tiles go
//! unused. This module is the core-side entry point that validates and
//! renders such assignments without depending on the library subsystem
//! itself (the tile set arrives as plain images, keeping the dependency
//! arrow pointing from `mosaic-tilelib` into `photomosaic`).

use mosaic_image::{Gray, GrayImage};

/// True when `assignment` maps each cell to a distinct tile in
/// `0..tile_count` (an injective, not necessarily surjective, map).
pub fn is_injective(assignment: &[usize], tile_count: usize) -> bool {
    let mut seen = vec![false; tile_count];
    assignment.iter().all(|&t| {
        if t >= tile_count || seen[t] {
            return false;
        }
        seen[t] = true;
        true
    })
}

/// Render a `grid × grid` mosaic from library tiles: cell `i` (row-major)
/// shows `tiles[assignment[i]]`. All tiles must be square and equally
/// sized; the output is `grid · tile_size` pixels per side.
///
/// # Errors
/// Returns a description when the assignment is not injective into the
/// tile set, the cell count mismatches `grid²`, or tile shapes disagree.
pub fn assemble_from_tiles(
    tiles: &[GrayImage],
    assignment: &[usize],
    grid: usize,
) -> Result<GrayImage, String> {
    if grid == 0 {
        return Err("grid must be positive".to_string());
    }
    if assignment.len() != grid * grid {
        return Err(format!(
            "assignment covers {} cells, grid {grid} needs {}",
            assignment.len(),
            grid * grid
        ));
    }
    if !is_injective(assignment, tiles.len()) {
        return Err("assignment must map cells to distinct tiles".to_string());
    }
    let first = assignment.first().map(|&t| &tiles[t]);
    let tile_size = match first {
        Some(tile) => tile.width(),
        None => return Err("grid must be positive".to_string()),
    };
    for &t in assignment {
        if tiles[t].dimensions() != (tile_size, tile_size) {
            return Err(format!(
                "tile {t} is {:?}, expected {tile_size}×{tile_size}",
                tiles[t].dimensions()
            ));
        }
    }
    if tile_size == 0 {
        return Err("tiles must be non-empty".to_string());
    }
    let size = grid * tile_size;
    let mut out = GrayImage::from_vec(size, size, vec![Gray(0); size * size])
        .map_err(|e| format!("{e:?}"))?;
    for (cell, &t) in assignment.iter().enumerate() {
        let (cy, cx) = (cell / grid, cell % grid);
        let (dst_x, dst_y) = (cx * tile_size, cy * tile_size);
        let tile = &tiles[t];
        for row in 0..tile_size {
            out.row_mut(dst_y + row)[dst_x..dst_x + tile_size].copy_from_slice(tile.row(row));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(size: usize, level: u8) -> GrayImage {
        GrayImage::from_vec(size, size, vec![Gray(level); size * size]).unwrap()
    }

    #[test]
    fn injectivity_predicate() {
        assert!(is_injective(&[2, 0, 3], 4));
        assert!(!is_injective(&[1, 1], 4), "repeats rejected");
        assert!(!is_injective(&[4], 4), "out of range rejected");
        assert!(is_injective(&[], 0), "empty map is injective");
    }

    #[test]
    fn assembles_selected_tiles_in_cell_order() {
        let tiles: Vec<GrayImage> = (0..6).map(|i| flat(2, i * 10)).collect();
        let out = assemble_from_tiles(&tiles, &[5, 0, 3, 2], 2).unwrap();
        assert_eq!(out.dimensions(), (4, 4));
        // Cell (0,0) shows tile 5, (0,1) tile 0, (1,0) tile 3, (1,1) tile 2.
        assert_eq!(out.pixel(0, 0).0, 50);
        assert_eq!(out.pixel(2, 0).0, 0);
        assert_eq!(out.pixel(0, 2).0, 30);
        assert_eq!(out.pixel(2, 2).0, 20);
    }

    #[test]
    fn rejects_bad_assignments() {
        let tiles: Vec<GrayImage> = (0..4).map(|i| flat(2, i)).collect();
        assert!(
            assemble_from_tiles(&tiles, &[0, 1], 2).is_err(),
            "cell count"
        );
        assert!(
            assemble_from_tiles(&tiles, &[0, 0, 1, 2], 2).is_err(),
            "repeat"
        );
        assert!(
            assemble_from_tiles(&tiles, &[0, 1, 2, 9], 2).is_err(),
            "range"
        );
        assert!(assemble_from_tiles(&tiles, &[], 0).is_err(), "zero grid");
    }

    #[test]
    fn rejects_mismatched_tile_shapes() {
        let tiles = vec![flat(2, 1), flat(3, 2), flat(2, 3), flat(2, 4)];
        assert!(assemble_from_tiles(&tiles, &[0, 1, 2, 3], 2).is_err());
    }
}
