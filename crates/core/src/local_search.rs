//! §IV-A, Algorithm 1 — the serial approximation algorithm.
//!
//! Starting from the identity arrangement (input tile `u` at target
//! position `u`), repeatedly sweep all `S(S−1)/2` position pairs and swap
//! whenever doing so strictly reduces the total error
//! (`E(I_u,T_u) + E(I_v,T_v) > E(I_v,T_u) + E(I_u,T_v)`). Terminates when
//! a full sweep performs no swap; every swap strictly decreases the
//! integer total, so termination is guaranteed.

use mosaic_grid::{Deadline, DeadlineExceeded, ErrorMatrix};

/// Result of a Step-3 search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SearchOutcome {
    /// `assignment[v] = u`: input tile `u` placed at target position `v`.
    pub assignment: Vec<usize>,
    /// Final total error (Eq. 2).
    pub total: u64,
    /// Number of full sweeps executed, including the final all-reject
    /// sweep — the paper's `k`.
    pub sweeps: usize,
    /// Total number of swaps performed.
    pub swaps: usize,
}

/// Unwrap a bounded-search result produced under [`Deadline::NONE`].
fn never_exceeded<T>(result: Result<T, DeadlineExceeded>) -> T {
    match result {
        Ok(value) => value,
        // lint:allow(panic) callers pass Deadline::NONE, which never expires
        Err(_) => unreachable!("unbounded deadline expired"),
    }
}

/// Run Algorithm 1 to convergence.
pub fn local_search(matrix: &ErrorMatrix) -> SearchOutcome {
    local_search_from(matrix, (0..matrix.size()).collect())
}

/// [`local_search`] with cooperative cancellation: the deadline is polled
/// before every sweep, so overshoot past an expiry is at most one sweep.
///
/// # Errors
/// Returns [`DeadlineExceeded`] when `deadline` expires before the search
/// converges (including a deadline that was already expired on entry).
pub fn local_search_bounded(
    matrix: &ErrorMatrix,
    deadline: &Deadline,
) -> Result<SearchOutcome, DeadlineExceeded> {
    local_search_from_bounded(matrix, (0..matrix.size()).collect(), deadline)
}

/// Run Algorithm 1 from an explicit starting arrangement (used by the
/// ablations and the annealing post-pass).
///
/// # Panics
/// Panics when `assignment` is not a permutation of `0..S` (checked by
/// the matrix total computation via out-of-range access) or has the wrong
/// length.
pub fn local_search_from(matrix: &ErrorMatrix, assignment: Vec<usize>) -> SearchOutcome {
    never_exceeded(local_search_from_bounded(
        matrix,
        assignment,
        &Deadline::NONE,
    ))
}

/// [`local_search_from`] with cooperative cancellation (see
/// [`local_search_bounded`] for the polling granularity).
///
/// # Errors
/// Returns [`DeadlineExceeded`] when `deadline` expires before convergence.
///
/// # Panics
/// Panics when `assignment` has the wrong length (as [`local_search_from`]).
pub fn local_search_from_bounded(
    matrix: &ErrorMatrix,
    mut assignment: Vec<usize>,
    deadline: &Deadline,
) -> Result<SearchOutcome, DeadlineExceeded> {
    let s = matrix.size();
    assert_eq!(assignment.len(), s, "assignment length must equal S");
    let mut sweeps = 0usize;
    let mut swaps = 0usize;
    loop {
        deadline.check()?;
        let _sweep = mosaic_telemetry::tracer().span("local_search_sweep");
        sweeps += 1;
        let mut swapped = false;
        for p in 0..s {
            for q in (p + 1)..s {
                if matrix.swap_gain(&assignment, p, q) > 0 {
                    assignment.swap(p, q);
                    swapped = true;
                    swaps += 1;
                }
            }
        }
        if !swapped {
            break;
        }
    }
    let total = matrix.assignment_total(&assignment);
    Ok(SearchOutcome {
        assignment,
        total,
        sweeps,
        swaps,
    })
}

/// A per-sweep convergence trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConvergenceTrace {
    /// Total error after each completed sweep (the last entry repeats the
    /// converged value: the final sweep performs no swap).
    pub totals: Vec<u64>,
    /// Swaps performed in each sweep.
    pub swaps_per_sweep: Vec<usize>,
}

/// Algorithm 1 with a per-sweep convergence trace; same result as
/// [`local_search`] plus the totals after every sweep, used by the
/// convergence analysis in EXPERIMENTS.md.
pub fn local_search_traced(matrix: &ErrorMatrix) -> (SearchOutcome, ConvergenceTrace) {
    let s = matrix.size();
    let mut assignment: Vec<usize> = (0..s).collect();
    let mut totals = Vec::new();
    let mut swaps_per_sweep = Vec::new();
    let mut swaps = 0usize;
    loop {
        let _sweep = mosaic_telemetry::tracer().span("local_search_sweep");
        let mut sweep_swaps = 0usize;
        for p in 0..s {
            for q in (p + 1)..s {
                if matrix.swap_gain(&assignment, p, q) > 0 {
                    assignment.swap(p, q);
                    sweep_swaps += 1;
                }
            }
        }
        swaps += sweep_swaps;
        totals.push(matrix.assignment_total(&assignment));
        swaps_per_sweep.push(sweep_swaps);
        if sweep_swaps == 0 {
            break;
        }
    }
    // lint:allow(panic) the loop above pushes a total before any break can run
    let total = *totals.last().expect("at least one sweep runs");
    let sweeps = totals.len();
    (
        SearchOutcome {
            assignment,
            total,
            sweeps,
            swaps,
        },
        ConvergenceTrace {
            totals,
            swaps_per_sweep,
        },
    )
}

/// True when no single swap can improve `assignment` — the local-search
/// fixed-point property (used by tests on both Algorithm 1 and 2 results).
pub fn is_swap_optimal(matrix: &ErrorMatrix, assignment: &[usize]) -> bool {
    let s = matrix.size();
    for p in 0..s {
        for q in (p + 1)..s {
            if matrix.swap_gain(assignment, p, q) > 0 {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix_from(n: usize, f: impl Fn(usize, usize) -> u32) -> ErrorMatrix {
        let mut data = Vec::with_capacity(n * n);
        for u in 0..n {
            for v in 0..n {
                data.push(f(u, v));
            }
        }
        ErrorMatrix::from_vec(n, data)
    }

    #[test]
    fn already_optimal_terminates_in_one_sweep() {
        // Zero diagonal: identity is globally optimal.
        let m = matrix_from(6, |u, v| if u == v { 0 } else { 50 });
        let out = local_search(&m);
        assert_eq!(out.total, 0);
        assert_eq!(out.sweeps, 1);
        assert_eq!(out.swaps, 0);
        assert_eq!(out.assignment, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn two_tiles_swap_when_beneficial() {
        // identity total = 10 + 10; swapped = 1 + 1.
        let m = ErrorMatrix::from_vec(2, vec![10, 1, 1, 10]);
        let out = local_search(&m);
        assert_eq!(out.assignment, vec![1, 0]);
        assert_eq!(out.total, 2);
        assert_eq!(out.swaps, 1);
        assert_eq!(out.sweeps, 2); // improving sweep + confirming sweep
    }

    #[test]
    fn result_is_swap_optimal() {
        let mut state = 5u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as u32
        };
        let m = matrix_from(20, |_, _| 0).clone();
        let _ = m;
        let data: Vec<u32> = (0..20 * 20).map(|_| next()).collect();
        let m = ErrorMatrix::from_vec(20, data);
        let out = local_search(&m);
        assert!(is_swap_optimal(&m, &out.assignment));
        assert_eq!(out.total, m.assignment_total(&out.assignment));
    }

    #[test]
    fn total_never_exceeds_identity_total() {
        let mut state = 77u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 500) as u32
        };
        let data: Vec<u32> = (0..30 * 30).map(|_| next()).collect();
        let m = ErrorMatrix::from_vec(30, data);
        let identity_total = m.assignment_total(&(0..30).collect::<Vec<_>>());
        let out = local_search(&m);
        assert!(out.total <= identity_total);
    }

    #[test]
    fn custom_start_is_respected() {
        let m = matrix_from(4, |u, v| if u == v { 0 } else { 9 });
        let out = local_search_from(&m, vec![3, 2, 1, 0]);
        // From the reversed start, the zero-diagonal optimum is reachable
        // by pairwise swaps.
        assert_eq!(out.total, 0);
        assert_eq!(out.assignment, vec![0, 1, 2, 3]);
        assert!(out.swaps >= 2);
    }

    #[test]
    fn single_tile_is_trivial() {
        let m = ErrorMatrix::from_vec(1, vec![42]);
        let out = local_search(&m);
        assert_eq!(out.assignment, vec![0]);
        assert_eq!(out.total, 42);
        assert_eq!(out.sweeps, 1);
    }

    #[test]
    fn traced_matches_untraced() {
        let mut state = 21u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 2_000) as u32
        };
        let data: Vec<u32> = (0..25 * 25).map(|_| next()).collect();
        let m = ErrorMatrix::from_vec(25, data);
        let plain = local_search(&m);
        let (traced, trace) = local_search_traced(&m);
        assert_eq!(plain, traced);
        assert_eq!(trace.totals.len(), plain.sweeps);
        assert_eq!(trace.swaps_per_sweep.iter().sum::<usize>(), plain.swaps);
        // Totals are non-increasing and end at the converged value.
        for w in trace.totals.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert_eq!(*trace.totals.last().unwrap(), plain.total);
        assert_eq!(*trace.swaps_per_sweep.last().unwrap(), 0);
    }

    #[test]
    fn is_swap_optimal_detects_improvable() {
        let m = ErrorMatrix::from_vec(2, vec![10, 1, 1, 10]);
        assert!(!is_swap_optimal(&m, &[0, 1]));
        assert!(is_swap_optimal(&m, &[1, 0]));
    }

    #[test]
    #[should_panic(expected = "length must equal")]
    fn wrong_start_length_panics() {
        let m = ErrorMatrix::from_vec(2, vec![0, 1, 1, 0]);
        let _ = local_search_from(&m, vec![0]);
    }

    #[test]
    fn bounded_with_live_deadline_matches_unbounded() {
        let m = ErrorMatrix::from_vec(2, vec![10, 1, 1, 10]);
        let deadline = Deadline::after(std::time::Duration::from_secs(3600));
        let bounded = local_search_bounded(&m, &deadline).unwrap();
        assert_eq!(bounded, local_search(&m));
    }

    #[test]
    fn bounded_with_expired_deadline_exits_before_any_sweep() {
        let m = ErrorMatrix::from_vec(2, vec![10, 1, 1, 10]);
        let expired = Deadline::after(std::time::Duration::ZERO);
        assert_eq!(local_search_bounded(&m, &expired), Err(DeadlineExceeded));
    }
}
