//! §IV-B + §V, Algorithm 2 — the parallel approximation algorithm.
//!
//! The pairs of each edge-color group are vertex-disjoint, so all swap
//! tests in one group read and write disjoint assignment slots and may run
//! concurrently. Groups are separated by kernel-boundary barriers
//! ("a CUDA kernel … performs the local search for each group, that is,
//! the execution is synchronized whenever the computation of each
//! iteration is finished").
//!
//! Three execution strategies share identical semantics (and are tested
//! for bit-equality of results):
//!
//! * [`parallel_search_reference`] — groups executed on one thread, the
//!   specification;
//! * [`parallel_search_threads`] — each group's pairs split across the
//!   persistent `mosaic-pool` workers (one batch per group, no per-group
//!   thread spawns);
//! * [`parallel_search_gpu`] — one simulated kernel launch per group, the
//!   paper's GPU implementation.

use crate::local_search::SearchOutcome;
use mosaic_edgecolor::SwapSchedule;
use mosaic_gpu::{BlockContext, GlobalBuffer, GlobalFlag, GpuSim, LaunchConfig, WorkProfile};
use mosaic_grid::{Deadline, DeadlineExceeded, ErrorMatrix};
use mosaic_pool::ThreadPool;

/// Unwrap a bounded-search result produced under [`Deadline::NONE`].
fn never_exceeded<T>(result: Result<T, DeadlineExceeded>) -> T {
    match result {
        Ok(value) => value,
        // lint:allow(panic) callers pass Deadline::NONE, which never expires
        Err(_) => unreachable!("unbounded deadline expired"),
    }
}

/// A [`SearchOutcome`] plus the kernel-launch count the GPU path would
/// issue (used for the analytic device model; identical across backends
/// because the group structure is).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParallelOutcome {
    /// Search result.
    pub outcome: SearchOutcome,
    /// Kernel launches (occupied groups × sweeps).
    pub launches: usize,
}

/// Work profile of Algorithm 2 for the analytic device model.
pub fn step3_parallel_profile(s: usize, sweeps: usize, launches: usize) -> WorkProfile {
    let pairs_per_sweep = (s * (s - 1) / 2) as u64;
    let total_pairs = pairs_per_sweep * sweeps as u64;
    WorkProfile {
        launches,
        // Per pair: four u32 matrix reads + two usize assignment reads and
        // (worst case) writes ≈ 16 + 32 bytes.
        global_bytes: total_pairs * 48,
        // Per pair: four adds and a compare plus four matrix reads on
        // scattered rows. 14 ops/pair calibrates the modeled host time to
        // the paper's measured Algorithm-1 throughput (~43 ns/pair on the
        // i7-3770, Table III) under the host model's efficiency derate,
        // and keeps the modeled GPU/CPU crossover at the paper's location
        // (<1x at S=16², growing through 32² and 64²).
        ops: total_pairs * 14,
    }
}

/// Reference execution: groups in order, pairs in order, single thread.
pub fn parallel_search_reference(matrix: &ErrorMatrix, schedule: &SwapSchedule) -> ParallelOutcome {
    never_exceeded(parallel_search_reference_bounded(
        matrix,
        schedule,
        &Deadline::NONE,
    ))
}

/// [`parallel_search_reference`] with cooperative cancellation: the
/// deadline is polled before every sweep, so overshoot past an expiry is
/// at most one sweep.
///
/// # Errors
/// Returns [`DeadlineExceeded`] when `deadline` expires before the search
/// converges (including a deadline that was already expired on entry).
pub fn parallel_search_reference_bounded(
    matrix: &ErrorMatrix,
    schedule: &SwapSchedule,
    deadline: &Deadline,
) -> Result<ParallelOutcome, DeadlineExceeded> {
    assert_eq!(
        schedule.tiles(),
        matrix.size(),
        "schedule must be built for S = matrix size"
    );
    let s = matrix.size();
    let mut assignment: Vec<usize> = (0..s).collect();
    let mut sweeps = 0usize;
    let mut swaps = 0usize;
    let mut launches = 0usize;
    loop {
        deadline.check()?;
        let _sweep = mosaic_telemetry::tracer().span("parallel_search_sweep");
        sweeps += 1;
        let mut swapped = false;
        for group in schedule.occupied_groups() {
            launches += 1;
            for &(p, q) in group {
                if matrix.swap_gain(&assignment, p, q) > 0 {
                    assignment.swap(p, q);
                    swapped = true;
                    swaps += 1;
                }
            }
        }
        if !swapped {
            break;
        }
    }
    let total = matrix.assignment_total(&assignment);
    Ok(ParallelOutcome {
        outcome: SearchOutcome {
            assignment,
            total,
            sweeps,
            swaps,
        },
        launches,
    })
}

/// Multi-core CPU execution: within each group, pair decisions are
/// computed by `threads` workers, then the (vertex-disjoint) swaps are
/// applied. Produces exactly the reference result.
///
/// # Panics
/// Panics when `threads == 0`.
pub fn parallel_search_threads(
    matrix: &ErrorMatrix,
    schedule: &SwapSchedule,
    threads: usize,
) -> ParallelOutcome {
    never_exceeded(parallel_search_threads_bounded(
        matrix,
        schedule,
        threads,
        &Deadline::NONE,
    ))
}

/// [`parallel_search_threads`] with cooperative cancellation (deadline
/// polled before every sweep, like the reference path).
///
/// # Errors
/// Returns [`DeadlineExceeded`] when `deadline` expires before convergence.
///
/// # Panics
/// Panics when `threads == 0`.
pub fn parallel_search_threads_bounded(
    matrix: &ErrorMatrix,
    schedule: &SwapSchedule,
    threads: usize,
    deadline: &Deadline,
) -> Result<ParallelOutcome, DeadlineExceeded> {
    parallel_search_threads_bounded_in(mosaic_pool::global(), matrix, schedule, threads, deadline)
}

/// [`parallel_search_threads_bounded`] dispatching on an explicit
/// [`ThreadPool`] instead of the process-wide one. One pool batch per
/// color group replaces the old per-group `thread::scope`, which cost
/// O(groups × sweeps × threads) OS thread spawns per search.
///
/// # Errors
/// Returns [`DeadlineExceeded`] when `deadline` expires before convergence.
///
/// # Panics
/// Panics when `threads == 0`.
pub fn parallel_search_threads_bounded_in(
    pool: &ThreadPool,
    matrix: &ErrorMatrix,
    schedule: &SwapSchedule,
    threads: usize,
    deadline: &Deadline,
) -> Result<ParallelOutcome, DeadlineExceeded> {
    assert!(threads > 0, "at least one worker thread is required");
    assert_eq!(
        schedule.tiles(),
        matrix.size(),
        "schedule must be built for S = matrix size"
    );
    let s = matrix.size();
    let mut assignment: Vec<usize> = (0..s).collect();
    let mut sweeps = 0usize;
    let mut swaps = 0usize;
    let mut launches = 0usize;
    let mut decisions: Vec<bool> = Vec::new();
    loop {
        deadline.check()?;
        let _sweep = mosaic_telemetry::tracer().span("parallel_search_sweep");
        sweeps += 1;
        let mut swapped = false;
        for group in schedule.occupied_groups() {
            launches += 1;
            decisions.clear();
            decisions.resize(group.len(), false);
            let chunk = group.len().div_ceil(threads);
            {
                let assignment = &assignment;
                pool.parallel_for_mut(&mut decisions, chunk, |index, flags| {
                    let pairs = &group[index * chunk..][..flags.len()];
                    for (&(p, q), flag) in pairs.iter().zip(flags.iter_mut()) {
                        *flag = matrix.swap_gain(assignment, p, q) > 0;
                    }
                });
            }
            for (&(p, q), &doit) in group.iter().zip(&decisions) {
                if doit {
                    assignment.swap(p, q);
                    swapped = true;
                    swaps += 1;
                }
            }
        }
        if !swapped {
            break;
        }
    }
    let total = matrix.assignment_total(&assignment);
    Ok(ParallelOutcome {
        outcome: SearchOutcome {
            assignment,
            total,
            sweeps,
            swaps,
        },
        launches,
    })
}

/// Pairs each simulated block processes in the GPU path.
const PAIRS_PER_BLOCK: usize = 128;

/// §V execution: one kernel launch per color group on the simulated
/// device, the assignment living in global memory. Produces exactly the
/// reference result (pairs within a group are disjoint, so concurrent
/// execution order cannot matter).
pub fn parallel_search_gpu(
    sim: &GpuSim,
    matrix: &ErrorMatrix,
    schedule: &SwapSchedule,
) -> ParallelOutcome {
    never_exceeded(parallel_search_gpu_bounded(
        sim,
        matrix,
        schedule,
        &Deadline::NONE,
    ))
}

/// [`parallel_search_gpu`] with cooperative cancellation: the deadline is
/// polled at sweep boundaries (between simulated kernel launches, never
/// inside one), so overshoot past an expiry is at most one sweep.
///
/// # Errors
/// Returns [`DeadlineExceeded`] when `deadline` expires before convergence.
pub fn parallel_search_gpu_bounded(
    sim: &GpuSim,
    matrix: &ErrorMatrix,
    schedule: &SwapSchedule,
    deadline: &Deadline,
) -> Result<ParallelOutcome, DeadlineExceeded> {
    assert_eq!(
        schedule.tiles(),
        matrix.size(),
        "schedule must be built for S = matrix size"
    );
    let s = matrix.size();
    let assignment = GlobalBuffer::from_vec((0..s).collect());
    let flag = GlobalFlag::new();
    let errors = matrix.as_slice();
    let mut sweeps = 0usize;
    let mut swaps = 0usize;
    let mut launches = 0usize;

    loop {
        deadline.check()?;
        let _sweep = mosaic_telemetry::tracer().span("parallel_search_sweep");
        sweeps += 1;
        flag.clear();
        for group in schedule.occupied_groups() {
            launches += 1;
            let blocks = group.len().div_ceil(PAIRS_PER_BLOCK);
            let swap_counts = GlobalBuffer::filled(blocks, 0usize);
            let kernel = |ctx: &mut BlockContext<'_>| {
                let b = ctx.block_id();
                let start = b * PAIRS_PER_BLOCK;
                let end = (start + PAIRS_PER_BLOCK).min(group.len());
                let mut local_swaps = 0usize;
                for &(p, q) in &group[start..end] {
                    let u = assignment.load(p);
                    let v = assignment.load(q);
                    let before = i64::from(errors[u * s + p]) + i64::from(errors[v * s + q]);
                    let after = i64::from(errors[v * s + p]) + i64::from(errors[u * s + q]);
                    if before > after {
                        assignment.store(p, v);
                        assignment.store(q, u);
                        flag.raise();
                        local_swaps += 1;
                    }
                }
                swap_counts.store(b, local_swaps);
            };
            sim.launch(
                LaunchConfig::linear(blocks, PAIRS_PER_BLOCK.min(group.len())),
                &kernel,
            );
            swaps += swap_counts.to_vec().iter().sum::<usize>();
        }
        if !flag.is_raised() {
            break;
        }
    }

    let assignment = assignment.into_vec();
    let total = matrix.assignment_total(&assignment);
    Ok(ParallelOutcome {
        outcome: SearchOutcome {
            assignment,
            total,
            sweeps,
            swaps,
        },
        launches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local_search::{is_swap_optimal, local_search};
    use mosaic_gpu::DeviceSpec;

    fn random_matrix(n: usize, seed: u64, max: u64) -> ErrorMatrix {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % max) as u32
        };
        ErrorMatrix::from_vec(n, (0..n * n).map(|_| next()).collect())
    }

    #[test]
    fn three_backends_produce_identical_results() {
        let sim = GpuSim::with_workers(DeviceSpec::tesla_k40(), 4);
        for &n in &[2usize, 9, 16, 40] {
            let m = random_matrix(n, n as u64, 10_000);
            let sched = SwapSchedule::for_tiles(n);
            let reference = parallel_search_reference(&m, &sched);
            let threads = parallel_search_threads(&m, &sched, 3);
            let gpu = parallel_search_gpu(&sim, &m, &sched);
            assert_eq!(reference, threads, "threads diverged at n={n}");
            assert_eq!(reference, gpu, "gpu diverged at n={n}");
        }
    }

    /// The scoped-thread implementation this module shipped with before
    /// the pool rewiring, kept verbatim as a test oracle: the pool-backed
    /// path must be decision-for-decision identical to it.
    fn scoped_thread_search(
        matrix: &ErrorMatrix,
        schedule: &SwapSchedule,
        threads: usize,
    ) -> ParallelOutcome {
        let s = matrix.size();
        let mut assignment: Vec<usize> = (0..s).collect();
        let mut sweeps = 0usize;
        let mut swaps = 0usize;
        let mut launches = 0usize;
        let mut decisions: Vec<bool> = Vec::new();
        loop {
            sweeps += 1;
            let mut swapped = false;
            for group in schedule.occupied_groups() {
                launches += 1;
                decisions.clear();
                decisions.resize(group.len(), false);
                let chunk = group.len().div_ceil(threads);
                std::thread::scope(|scope| {
                    let assignment = &assignment;
                    for (pairs, flags) in group.chunks(chunk).zip(decisions.chunks_mut(chunk)) {
                        scope.spawn(move || {
                            for (&(p, q), flag) in pairs.iter().zip(flags.iter_mut()) {
                                *flag = matrix.swap_gain(assignment, p, q) > 0;
                            }
                        });
                    }
                });
                for (&(p, q), &doit) in group.iter().zip(&decisions) {
                    if doit {
                        assignment.swap(p, q);
                        swapped = true;
                        swaps += 1;
                    }
                }
            }
            if !swapped {
                break;
            }
        }
        let total = matrix.assignment_total(&assignment);
        ParallelOutcome {
            outcome: SearchOutcome {
                assignment,
                total,
                sweeps,
                swaps,
            },
            launches,
        }
    }

    #[test]
    fn pool_backed_search_equals_scoped_threads_across_thread_counts() {
        let m = random_matrix(40, 11, 10_000);
        let sched = SwapSchedule::for_tiles(40);
        for threads in [1usize, 2, 3, 7, 16] {
            let scoped = scoped_thread_search(&m, &sched, threads);
            let pooled = parallel_search_threads(&m, &sched, threads);
            assert_eq!(pooled, scoped, "diverged at threads={threads}");
            let own_pool = mosaic_pool::ThreadPool::new(2);
            let explicit =
                parallel_search_threads_bounded_in(&own_pool, &m, &sched, threads, &Deadline::NONE)
                    .unwrap();
            assert_eq!(
                explicit, scoped,
                "explicit pool diverged at threads={threads}"
            );
        }
    }

    #[test]
    fn converges_to_swap_optimal_point() {
        let m = random_matrix(25, 3, 1_000);
        let sched = SwapSchedule::for_tiles(25);
        let out = parallel_search_reference(&m, &sched);
        assert!(is_swap_optimal(&m, &out.outcome.assignment));
        assert_eq!(
            out.outcome.total,
            m.assignment_total(&out.outcome.assignment)
        );
    }

    #[test]
    fn comparable_quality_to_serial_algorithm_1() {
        // §IV-B: the sweep order differs so totals differ slightly, but
        // both are swap-optimal; neither dominates systematically. Check
        // they land within a few percent of each other.
        for seed in [2u64, 13, 77] {
            let m = random_matrix(36, seed, 5_000);
            let sched = SwapSchedule::for_tiles(36);
            let serial = local_search(&m);
            let parallel = parallel_search_reference(&m, &sched);
            let lo = serial.total.min(parallel.outcome.total) as f64;
            let hi = serial.total.max(parallel.outcome.total) as f64;
            assert!(hi / lo < 1.2, "seed {seed}: {lo} vs {hi}");
        }
    }

    #[test]
    fn launch_count_is_sweeps_times_occupied_groups() {
        let m = random_matrix(16, 9, 100);
        let sched = SwapSchedule::for_tiles(16);
        let out = parallel_search_reference(&m, &sched);
        assert_eq!(out.launches, out.outcome.sweeps * 15);
    }

    #[test]
    fn already_optimal_needs_one_sweep() {
        let m = {
            let mut data = vec![50u32; 36];
            for i in 0..6 {
                data[i * 6 + i] = 0;
            }
            ErrorMatrix::from_vec(6, data)
        };
        let sched = SwapSchedule::for_tiles(6);
        let out = parallel_search_reference(&m, &sched);
        assert_eq!(out.outcome.sweeps, 1);
        assert_eq!(out.outcome.swaps, 0);
        assert_eq!(out.outcome.total, 0);
    }

    #[test]
    fn single_tile_schedule_is_degenerate_but_fine() {
        let m = ErrorMatrix::from_vec(1, vec![9]);
        let sched = SwapSchedule::for_tiles(1);
        let out = parallel_search_reference(&m, &sched);
        assert_eq!(out.outcome.assignment, vec![0]);
        assert_eq!(out.launches, 0);
    }

    #[test]
    fn gpu_path_with_many_blocks_per_group() {
        // Group sizes > PAIRS_PER_BLOCK force multi-block launches.
        let sim = GpuSim::with_workers(DeviceSpec::tesla_k40(), 4);
        let n = 300; // group size 150 pairs > 128
        let m = random_matrix(n, 4, 100_000);
        let sched = SwapSchedule::for_tiles(n);
        let gpu = parallel_search_gpu(&sim, &m, &sched);
        let reference = parallel_search_reference(&m, &sched);
        assert_eq!(gpu, reference);
    }

    #[test]
    fn profile_scales_with_sweeps() {
        let p1 = step3_parallel_profile(100, 1, 99);
        let p2 = step3_parallel_profile(100, 2, 198);
        assert_eq!(p2.ops, 2 * p1.ops);
        assert_eq!(p2.global_bytes, 2 * p1.global_bytes);
    }

    #[test]
    #[should_panic(expected = "schedule must be built")]
    fn mismatched_schedule_panics() {
        let m = random_matrix(4, 1, 10);
        let sched = SwapSchedule::for_tiles(5);
        let _ = parallel_search_reference(&m, &sched);
    }

    #[test]
    fn bounded_variants_with_live_deadline_match_unbounded() {
        let sim = GpuSim::with_workers(DeviceSpec::tesla_k40(), 2);
        let m = random_matrix(16, 5, 1_000);
        let sched = SwapSchedule::for_tiles(16);
        let deadline = Deadline::after(std::time::Duration::from_secs(3600));
        let reference = parallel_search_reference(&m, &sched);
        assert_eq!(
            parallel_search_reference_bounded(&m, &sched, &deadline).unwrap(),
            reference
        );
        assert_eq!(
            parallel_search_threads_bounded(&m, &sched, 3, &deadline).unwrap(),
            reference
        );
        assert_eq!(
            parallel_search_gpu_bounded(&sim, &m, &sched, &deadline).unwrap(),
            reference
        );
    }

    #[test]
    fn bounded_variants_with_expired_deadline_exit_before_any_sweep() {
        let sim = GpuSim::with_workers(DeviceSpec::tesla_k40(), 2);
        let m = random_matrix(9, 5, 1_000);
        let sched = SwapSchedule::for_tiles(9);
        let expired = Deadline::after(std::time::Duration::ZERO);
        assert_eq!(
            parallel_search_reference_bounded(&m, &sched, &expired),
            Err(DeadlineExceeded)
        );
        assert_eq!(
            parallel_search_threads_bounded(&m, &sched, 3, &expired),
            Err(DeadlineExceeded)
        );
        assert_eq!(
            parallel_search_gpu_bounded(&sim, &m, &sched, &expired),
            Err(DeadlineExceeded)
        );
    }
}
