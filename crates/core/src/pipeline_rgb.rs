//! RGB pipeline — the paper's §II color extension as a first-class entry
//! point.
//!
//! "We can easily extend the proposed photomosaic method to deal with
//! color images only by changing the error function in Eq. (1)." Every
//! substrate is generic over the pixel type, so this module is the same
//! three steps as [`crate::pipeline`] instantiated at [`Rgb`]: per-channel
//! histogram specification, the channel-summed error metric, the same
//! solvers and searches on the resulting matrix.

use crate::config::{Algorithm, Backend, MosaicConfig};
use crate::errors::compute_error_matrix;
use crate::local_search::{local_search, SearchOutcome};
use crate::optimal::{optimal_rearrangement, sparse_rearrangement};
use crate::parallel_search::{
    parallel_search_gpu, parallel_search_reference, parallel_search_threads,
};
use crate::preprocess::preprocess_rgb;
use crate::report::GenerationReport;
use mosaic_edgecolor::SwapSchedule;
use mosaic_gpu::{DeviceSpec, GpuSim, WorkProfile};
use mosaic_grid::{assemble, LayoutError, TileLayout};
use mosaic_image::RgbImage;
use std::time::Instant;

/// Rearranged RGB image plus accounting.
#[derive(Clone, Debug)]
pub struct RgbMosaicResult {
    /// The rearranged image `R`.
    pub image: RgbImage,
    /// The assignment (`assignment[v] = u`).
    pub assignment: Vec<usize>,
    /// Timings and totals (error values are channel-summed SAD).
    pub report: GenerationReport,
}

/// Generate a color photomosaic. Identical configuration surface to
/// [`crate::generate`].
///
/// # Errors
/// Returns [`LayoutError`] for non-square, mismatched or non-divisible
/// geometry.
pub fn generate_rgb(
    input: &RgbImage,
    target: &RgbImage,
    config: &MosaicConfig,
) -> Result<RgbMosaicResult, LayoutError> {
    let (w, h) = target.dimensions();
    if w != h {
        return Err(LayoutError::NotSquare {
            width: w,
            height: h,
        });
    }
    let layout = TileLayout::with_grid(w, config.grid)?;
    layout.check_image(input)?;
    layout.check_image(target)?;

    let t1 = Instant::now();
    let prepared = preprocess_rgb(input, target, config.preprocess);
    let step1_wall = t1.elapsed();

    let (matrix, step2_trace) =
        compute_error_matrix(&prepared, target, layout, config.metric, config.backend)?;

    let t3 = Instant::now();
    let outcome: SearchOutcome = match config.algorithm {
        Algorithm::Optimal(solver) => optimal_rearrangement(&matrix, solver),
        Algorithm::Greedy => optimal_rearrangement(&matrix, mosaic_assign::SolverKind::Greedy),
        Algorithm::SparseMatch { k } => sparse_rearrangement(&matrix, k),
        Algorithm::LocalSearch => local_search(&matrix),
        Algorithm::ParallelSearch => {
            let schedule = SwapSchedule::for_tiles(matrix.size());
            match config.backend {
                Backend::Serial => parallel_search_reference(&matrix, &schedule).outcome,
                Backend::Threads(t) => {
                    parallel_search_threads(&matrix, &schedule, t.max(1)).outcome
                }
                Backend::GpuSim { workers } => {
                    let sim = match workers {
                        Some(w) => GpuSim::with_workers(DeviceSpec::tesla_k40(), w),
                        None => GpuSim::new(DeviceSpec::tesla_k40()),
                    };
                    parallel_search_gpu(&sim, &matrix, &schedule).outcome
                }
            }
        }
        Algorithm::Anneal { seed, sweeps } => crate::anneal::anneal_search(&matrix, seed, sweeps),
    };
    let step3_wall = t3.elapsed();

    let image = assemble(&prepared, layout, &outcome.assignment)?;
    let report = GenerationReport {
        config: config.clone(),
        image_size: w,
        tile_count: layout.tile_count(),
        tile_size: layout.tile_size(),
        total_error: outcome.total,
        sweeps: outcome.sweeps,
        swaps: outcome.swaps,
        step1_wall,
        step2_wall: step2_trace.wall,
        step3_wall,
        step2_profile: step2_trace.profile,
        step3_profile: WorkProfile::default(),
    };
    Ok(RgbMosaicResult {
        image,
        assignment: outcome.assignment,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MosaicBuilder;
    use mosaic_assign::SolverKind;
    use mosaic_image::synth::{tint, Scene};
    use mosaic_image::{metrics, Rgb};

    fn pair(n: usize) -> (RgbImage, RgbImage) {
        let input = tint(
            &Scene::Portrait.render(n, 1),
            Rgb::new(40, 16, 8),
            Rgb::new(255, 214, 170),
        );
        let target = tint(
            &Scene::Regatta.render(n, 2),
            Rgb::new(8, 24, 48),
            Rgb::new(200, 230, 255),
        );
        (input, target)
    }

    #[test]
    fn rgb_pipeline_runs_every_algorithm() {
        let (input, target) = pair(48);
        for algorithm in [
            Algorithm::Optimal(SolverKind::JonkerVolgenant),
            Algorithm::LocalSearch,
            Algorithm::ParallelSearch,
        ] {
            let config = MosaicBuilder::new()
                .grid(6)
                .algorithm(algorithm)
                .backend(Backend::Serial)
                .build();
            let result = generate_rgb(&input, &target, &config).unwrap();
            assert_eq!(result.image.dimensions(), (48, 48));
            assert_eq!(
                result.report.total_error,
                metrics::sad(&result.image, &target),
                "{algorithm:?}"
            );
        }
    }

    #[test]
    fn rgb_optimal_bounds_approximation() {
        let (input, target) = pair(48);
        let run = |algorithm| {
            let config = MosaicBuilder::new()
                .grid(8)
                .algorithm(algorithm)
                .backend(Backend::Serial)
                .build();
            generate_rgb(&input, &target, &config)
                .unwrap()
                .report
                .total_error
        };
        assert!(run(Algorithm::Optimal(SolverKind::Hungarian)) <= run(Algorithm::LocalSearch));
    }

    #[test]
    fn rgb_backends_agree() {
        let (input, target) = pair(32);
        let mk = |backend| {
            MosaicBuilder::new()
                .grid(4)
                .algorithm(Algorithm::ParallelSearch)
                .backend(backend)
                .build()
        };
        let a = generate_rgb(&input, &target, &mk(Backend::Serial)).unwrap();
        let b = generate_rgb(&input, &target, &mk(Backend::Threads(2))).unwrap();
        let c = generate_rgb(&input, &target, &mk(Backend::GpuSim { workers: Some(2) })).unwrap();
        assert_eq!(a.image, b.image);
        assert_eq!(a.image, c.image);
    }

    #[test]
    fn rgb_geometry_errors() {
        let (input, _) = pair(32);
        let (_, target64) = pair(64);
        let config = MosaicBuilder::new()
            .grid(4)
            .backend(Backend::Serial)
            .build();
        assert!(generate_rgb(&input, &target64, &config).is_err());
    }

    #[test]
    fn rgb_mosaic_moves_toward_target_colors() {
        let (input, target) = pair(64);
        let config = MosaicBuilder::new()
            .grid(8)
            .algorithm(Algorithm::Optimal(SolverKind::JonkerVolgenant))
            .backend(Backend::Serial)
            .build();
        let result = generate_rgb(&input, &target, &config).unwrap();
        let prepared = preprocess_rgb(&input, &target, config.preprocess);
        assert!(metrics::sad(&result.image, &target) <= metrics::sad(&prepared, &target));
    }
}
