//! A minimal, dependency-free JSON value model.
//!
//! The offline build keeps the workspace's dependency graph empty, so the
//! machine-readable outputs (bench binaries, `GenerationReport`
//! serialization) and the `mosaic-service` wire protocol share this tiny
//! encoder/parser instead of `serde`. It supports the full JSON data
//! model; objects preserve insertion order so encodings are stable and
//! diffable.
//!
//! # Example
//!
//! ```
//! use photomosaic::json::Json;
//!
//! let v = Json::obj([("total", Json::from(42u64)), ("ok", Json::Bool(true))]);
//! let text = v.encode();
//! assert_eq!(text, r#"{"total":42,"ok":true}"#);
//! assert_eq!(Json::parse(&text).unwrap().get("total").unwrap().as_u64(), Some(42));
//! ```

use std::fmt;

/// A JSON value. Objects preserve insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// Error produced by [`Json::parse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the problem.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

impl Json {
    /// Build an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Member lookup on objects (`None` for other variants or missing
    /// keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer (requires an exact
    /// non-negative integral value).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize to compact JSON text (no whitespace).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_number(*n, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse JSON text.
    ///
    /// # Errors
    /// Returns [`JsonError`] with a byte offset on malformed input,
    /// including trailing garbage after the first value.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut p = Parser {
            bytes,
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; encode as null like JavaScript's JSON.stringify.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Deepest array/object nesting the parser accepts. The recursive
/// descent uses the call stack, so unbounded nesting would let a hostile
/// input (`[[[[…`) overflow it; past this depth parsing fails with a
/// normal [`JsonError`] instead.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.nested(Parser::array),
            Some(b'{') => self.nested(Parser::object),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn nested(
        &mut self,
        parse: fn(&mut Self) -> Result<Json, JsonError>,
    ) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting deeper than 128 levels"));
        }
        self.depth += 1;
        let result = parse(self);
        self.depth -= 1;
        result
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let code = 0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(code)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                char::from_u32(first)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            continue; // hex4 already advanced past digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this
                    // boundary arithmetic is safe).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let chunk =
                        std::str::from_utf8(&rest[..len]).map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.encode(), text);
        }
    }

    #[test]
    fn nested_structures_roundtrip() {
        let text = r#"{"a":[1,2,{"b":null}],"c":"x","d":{"e":false}}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.encode(), text);
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Json::obj([("z", Json::from(1u64)), ("a", Json::from(2u64))]);
        assert_eq!(v.encode(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "line1\nline2\t\"quoted\" back\\slash \u{1F600} \u{08}";
        let encoded = Json::Str(original.to_string()).encode();
        assert_eq!(Json::parse(&encoded).unwrap().as_str(), Some(original));
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(Json::parse(r#""Aé😀""#).unwrap().as_str(), Some("Aé😀"));
    }

    #[test]
    fn integers_encode_without_fraction() {
        assert_eq!(Json::from(12_345u64).encode(), "12345");
        assert_eq!(Json::Num(2.5).encode(), "2.5");
        assert_eq!(Json::Num(f64::NAN).encode(), "null");
    }

    #[test]
    fn as_u64_rejects_non_integers() {
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(7.0).as_u64(), Some(7));
    }

    #[test]
    fn parse_errors_carry_offsets() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
        let err = Json::parse("[1, oops]").unwrap_err();
        assert!(err.offset > 0);
        assert!(!err.message.is_empty());
    }

    #[test]
    fn hostile_nesting_is_an_error_not_a_stack_overflow() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&ok).is_ok(), "100 levels stay within bounds");
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.encode(), r#"{"a":[1,2]}"#);
    }

    #[test]
    fn numbers_with_exponents_parse() {
        assert_eq!(Json::parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(Json::parse("-2.5E-1").unwrap().as_f64(), Some(-0.25));
    }
}
