//! Simulated-annealing variant of the local search (DESIGN.md §7
//! extension).
//!
//! Algorithm 1 is a pure descent: it only accepts strictly improving
//! swaps, so it stops at the first swap-local optimum. This variant runs a
//! configurable number of annealing sweeps — accepting worsening swaps
//! with probability `exp(−Δ/T)` under a geometric cooling schedule — and
//! then polishes with plain descent so the result is still swap-optimal.
//! The schedule-ablation bench uses it to quantify how far Algorithm 1's
//! local optima sit from what extra search effort can reach.

use crate::local_search::{local_search_from, SearchOutcome};
use mosaic_grid::ErrorMatrix;

/// Deterministic xorshift64* PRNG (same construction as
/// `mosaic_image::synth::XorShift64`, duplicated to keep this crate's
/// dependency surface unchanged).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        })
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    #[inline]
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    #[inline]
    fn below(&mut self, bound: usize) -> usize {
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }
}

/// Run `sweeps` annealing sweeps (each proposing `S(S−1)/2` random swaps)
/// followed by a descent polish. `sweeps == 0` degenerates to plain
/// Algorithm 1.
pub fn anneal_search(matrix: &ErrorMatrix, seed: u64, sweeps: usize) -> SearchOutcome {
    let s = matrix.size();
    let mut assignment: Vec<usize> = (0..s).collect();
    if s >= 2 && sweeps > 0 {
        let mut rng = Rng::new(seed);
        // Initial temperature: the mean matrix entry, a scale on which
        // typical Δ values live.
        let mean_entry =
            matrix.as_slice().iter().map(|&v| u64::from(v)).sum::<u64>() as f64 / (s * s) as f64;
        let mut temperature = mean_entry.max(1.0);
        let proposals_per_sweep = s * (s - 1) / 2;
        for _ in 0..sweeps {
            for _ in 0..proposals_per_sweep {
                let p = rng.below(s);
                let mut q = rng.below(s - 1);
                if q >= p {
                    q += 1;
                }
                let gain = matrix.swap_gain(&assignment, p, q);
                let accept = if gain > 0 {
                    true
                } else {
                    let delta = (-gain) as f64;
                    rng.next_f64() < (-delta / temperature).exp()
                };
                if accept {
                    assignment.swap(p, q);
                }
            }
            temperature *= 0.8;
        }
    }
    let mut polished = local_search_from(matrix, assignment);
    polished.sweeps += sweeps;
    polished
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local_search::{is_swap_optimal, local_search};
    use mosaic_assign::SolverKind;

    fn random_matrix(n: usize, seed: u64, max: u64) -> ErrorMatrix {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % max) as u32
        };
        ErrorMatrix::from_vec(n, (0..n * n).map(|_| next()).collect())
    }

    #[test]
    fn zero_sweeps_equals_plain_descent() {
        let m = random_matrix(16, 3, 1000);
        assert_eq!(anneal_search(&m, 1, 0), local_search(&m));
    }

    #[test]
    fn result_is_swap_optimal() {
        let m = random_matrix(20, 9, 1000);
        let out = anneal_search(&m, 42, 5);
        assert!(is_swap_optimal(&m, &out.assignment));
        assert_eq!(out.total, m.assignment_total(&out.assignment));
    }

    #[test]
    fn deterministic_per_seed() {
        let m = random_matrix(12, 5, 500);
        assert_eq!(anneal_search(&m, 7, 3), anneal_search(&m, 7, 3));
    }

    #[test]
    fn never_worse_than_optimal_bound() {
        let m = random_matrix(18, 1, 2000);
        let opt = crate::optimal::optimal_rearrangement(&m, SolverKind::Hungarian);
        let out = anneal_search(&m, 11, 6);
        assert!(out.total >= opt.total);
    }

    #[test]
    fn single_tile_degenerate() {
        let m = ErrorMatrix::from_vec(1, vec![5]);
        let out = anneal_search(&m, 3, 10);
        assert_eq!(out.assignment, vec![0]);
        assert_eq!(out.total, 5);
    }
}
