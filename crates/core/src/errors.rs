//! Step 2 — the S×S error matrix, on every backend.
//!
//! §V: "To implement this step, S CUDA blocks are invoked. Each CUDA block
//! is responsible for computing S error values E(I_u, T_1) … E(I_u, T_S).
//! … First, threads in each CUDA block read pixel values of tile I_u and
//! store them to the shared memory." The simulated-device path reproduces
//! that decomposition exactly: one block per input tile, the tile staged
//! in shared memory, the row of S errors written to global memory.

use crate::config::Backend;
use mosaic_gpu::{BlockContext, DeviceSpec, GlobalBuffer, GpuSim, LaunchConfig, WorkProfile};
use mosaic_grid::LayoutError;
use mosaic_grid::{
    build_error_matrix, build_error_matrix_threaded_bounded_in, BuildError, Deadline, ErrorMatrix,
    TileLayout, TileMetric,
};
use mosaic_image::{Image, Pixel};
use mosaic_pool::ThreadPool;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Timing and work accounting of one pipeline step.
#[derive(Clone, Debug, Default)]
pub struct StepTrace {
    /// Host wall-clock time of the step.
    pub wall: Duration,
    /// Abstract work profile for the analytic device model.
    pub profile: WorkProfile,
}

/// Flatten an image into interleaved channel bytes (row-major), the layout
/// the simulated device consumes.
pub fn image_bytes<P: Pixel>(img: &Image<P>) -> Vec<u8> {
    let mut out = Vec::with_capacity(img.pixels().len() * P::CHANNELS);
    for p in img.pixels() {
        out.extend_from_slice(p.channels());
    }
    out
}

/// The work profile of Step 2 for the given geometry (used for modeled
/// device times; identical for every backend since the algorithm is).
pub fn step2_profile<P: Pixel>(layout: TileLayout, launches: usize) -> WorkProfile {
    let s = layout.tile_count() as u64;
    let tile_bytes = (layout.pixels_per_tile() * P::CHANNELS) as u64;
    WorkProfile {
        launches,
        // Each block reads its input tile once plus all S target tiles and
        // writes S u32 results.
        global_bytes: s * tile_bytes + s * s * tile_bytes + s * s * 4,
        // One subtract + one accumulate per channel sample per pair.
        ops: s * s * tile_bytes * 2,
    }
}

/// Compute the Step-2 matrix on the configured backend.
///
/// # Errors
/// Returns [`LayoutError`] when either image does not match `layout`.
pub fn compute_error_matrix<P: Pixel>(
    input: &Image<P>,
    target: &Image<P>,
    layout: TileLayout,
    metric: TileMetric,
    backend: Backend,
) -> Result<(ErrorMatrix, StepTrace), LayoutError> {
    match compute_error_matrix_bounded(input, target, layout, metric, backend, &Deadline::NONE) {
        Ok(out) => Ok(out),
        Err(BuildError::Layout(e)) => Err(e),
        // lint:allow(panic) Deadline::NONE can never be exceeded
        Err(BuildError::DeadlineExceeded(_)) => unreachable!("unbounded deadline expired"),
    }
}

/// [`compute_error_matrix`] with cooperative cancellation.
///
/// The threaded backend polls `deadline` at row boundaries; the serial
/// and simulated-GPU backends are not internally interruptible, so for
/// those the deadline is only checked on entry (the overshoot is then one
/// whole build — per-job deadlines in the service should pair with the
/// threaded backend when tight bounds matter).
///
/// # Errors
/// Returns [`BuildError::Layout`] when either image does not match
/// `layout`, and [`BuildError::DeadlineExceeded`] when `deadline` expires.
pub fn compute_error_matrix_bounded<P: Pixel>(
    input: &Image<P>,
    target: &Image<P>,
    layout: TileLayout,
    metric: TileMetric,
    backend: Backend,
    deadline: &Deadline,
) -> Result<(ErrorMatrix, StepTrace), BuildError> {
    compute_error_matrix_bounded_in(
        mosaic_pool::global(),
        input,
        target,
        layout,
        metric,
        backend,
        deadline,
    )
}

/// [`compute_error_matrix_bounded`] with the parallel backends dispatched
/// on an explicit [`ThreadPool`] instead of the process-wide one.
///
/// # Errors
/// See [`compute_error_matrix_bounded`].
pub fn compute_error_matrix_bounded_in<P: Pixel>(
    pool: &Arc<ThreadPool>,
    input: &Image<P>,
    target: &Image<P>,
    layout: TileLayout,
    metric: TileMetric,
    backend: Backend,
    deadline: &Deadline,
) -> Result<(ErrorMatrix, StepTrace), BuildError> {
    deadline.check()?;
    let start = Instant::now();
    let (matrix, launches) = match backend {
        Backend::Serial => (build_error_matrix(input, target, layout, metric)?, 0),
        Backend::Threads(threads) => (
            build_error_matrix_threaded_bounded_in(
                pool,
                input,
                target,
                layout,
                metric,
                threads.max(1),
                deadline,
            )?,
            0,
        ),
        Backend::GpuSim { workers } => {
            let lanes = workers.unwrap_or_else(|| pool.threads());
            let sim = GpuSim::with_pool(DeviceSpec::tesla_k40(), Arc::clone(pool), lanes);
            (gpu_error_matrix(&sim, input, target, layout, metric)?, 1)
        }
    };
    let trace = StepTrace {
        wall: start.elapsed(),
        profile: step2_profile::<P>(layout, launches),
    };
    Ok((matrix, trace))
}

/// §V Step-2 kernel on an existing simulator instance.
///
/// # Errors
/// Returns [`LayoutError`] when either image does not match `layout`.
pub fn gpu_error_matrix<P: Pixel>(
    sim: &GpuSim,
    input: &Image<P>,
    target: &Image<P>,
    layout: TileLayout,
    metric: TileMetric,
) -> Result<ErrorMatrix, LayoutError> {
    layout.check_image(input)?;
    layout.check_image(target)?;
    // Same u32-entry overflow guard the serial builder enforces; without it
    // `e as u32` below would silently truncate (e.g. SSD on 512-pixel
    // tiles exceeds u32::MAX).
    let bound = metric.max_tile_error::<P>(layout.pixels_per_tile());
    assert!(
        bound <= u64::from(u32::MAX),
        "metric {metric:?} with tile {0}x{0} overflows u32 entries",
        layout.tile_size(),
    );
    let s = layout.tile_count();
    let m = layout.tile_size();
    let channels = P::CHANNELS;
    let row_bytes = layout.image_size() * channels;
    let tile_row_bytes = m * channels;

    let input_bytes = image_bytes(input);
    let target_bytes = image_bytes(target);
    let matrix_out = GlobalBuffer::filled(s * s, 0u32);

    // Resolve the SIMD dispatch once, outside the lane closure: the
    // simulated device kernel's per-row SAD/SSD goes through the same
    // byte-row kernels as the CPU builders, so the "GPU" path cannot
    // drift from them either.
    let k = mosaic_image::kernel::active();
    let kernel = |ctx: &mut BlockContext<'_>| {
        // One block per input tile u (§V): stage I_u in shared memory …
        let u = ctx.block_id();
        let (ux, uy) = layout.tile_origin(u);
        let staged = ctx.shared().alloc_u8(m * tile_row_bytes);
        for dy in 0..m {
            let src = (uy + dy) * row_bytes + ux * channels;
            staged[dy * tile_row_bytes..(dy + 1) * tile_row_bytes]
                .copy_from_slice(&input_bytes[src..src + tile_row_bytes]);
        }
        // … then compute E(I_u, T_v) for every v. On the real device the
        // block's threads split the v range; sequential iteration inside
        // the block is the barrier-free equivalent schedule.
        for v in 0..s {
            let (vx, vy) = layout.tile_origin(v);
            let e: u64 = match metric {
                TileMetric::Sad => {
                    let mut acc = 0u64;
                    for dy in 0..m {
                        let t0 = (vy + dy) * row_bytes + vx * channels;
                        let trow = &target_bytes[t0..t0 + tile_row_bytes];
                        let srow = &staged[dy * tile_row_bytes..(dy + 1) * tile_row_bytes];
                        acc += k.sad(srow, trow);
                    }
                    acc
                }
                TileMetric::Ssd => {
                    let mut acc = 0u64;
                    for dy in 0..m {
                        let t0 = (vy + dy) * row_bytes + vx * channels;
                        let trow = &target_bytes[t0..t0 + tile_row_bytes];
                        let srow = &staged[dy * tile_row_bytes..(dy + 1) * tile_row_bytes];
                        acc += k.ssd(srow, trow);
                    }
                    acc
                }
                TileMetric::MeanAbs => {
                    let mut sum_a = 0u64;
                    let mut sum_b = 0u64;
                    for dy in 0..m {
                        let t0 = (vy + dy) * row_bytes + vx * channels;
                        let trow = &target_bytes[t0..t0 + tile_row_bytes];
                        let srow = &staged[dy * tile_row_bytes..(dy + 1) * tile_row_bytes];
                        for (&a, &b) in srow.iter().zip(trow) {
                            sum_a += u64::from(a);
                            sum_b += u64::from(b);
                        }
                    }
                    sum_a.abs_diff(sum_b)
                }
            };
            matrix_out.store(u * s + v, e as u32);
        }
    };

    // S blocks; the per-block thread count mirrors one thread per tile
    // pixel up to the device's 1024-thread block limit.
    let threads_per_block = layout.pixels_per_tile().min(1024);
    sim.launch(LaunchConfig::linear(s, threads_per_block), &kernel);

    Ok(ErrorMatrix::from_vec(s, matrix_out.into_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_image::{synth, Rgb};

    #[test]
    fn gpu_matrix_matches_serial_for_every_metric() {
        let input = synth::fur(48, 3);
        let target = synth::drapery(48, 9);
        let layout = TileLayout::new(48, 8).unwrap();
        let sim = GpuSim::with_workers(DeviceSpec::tesla_k40(), 4);
        for metric in TileMetric::ALL {
            let serial = build_error_matrix(&input, &target, layout, metric).unwrap();
            let gpu = gpu_error_matrix(&sim, &input, &target, layout, metric).unwrap();
            assert_eq!(gpu, serial, "metric {metric:?}");
        }
    }

    #[test]
    fn gpu_matrix_matches_serial_for_rgb() {
        let gray_in = synth::portrait(32, 4);
        let gray_tg = synth::regatta(32, 5);
        let input = synth::tint(&gray_in, Rgb::new(10, 0, 30), Rgb::new(240, 250, 220));
        let target = synth::tint(&gray_tg, Rgb::new(0, 20, 10), Rgb::new(255, 235, 245));
        let layout = TileLayout::new(32, 8).unwrap();
        let sim = GpuSim::with_workers(DeviceSpec::tesla_k40(), 4);
        for metric in TileMetric::ALL {
            let serial = build_error_matrix(&input, &target, layout, metric).unwrap();
            let gpu = gpu_error_matrix(&sim, &input, &target, layout, metric).unwrap();
            assert_eq!(gpu, serial, "metric {metric:?}");
        }
    }

    #[test]
    fn all_backends_agree() {
        let input = synth::plasma(32, 2, 3);
        let target = synth::checker(32, 8, 7);
        let layout = TileLayout::new(32, 8).unwrap();
        let (serial, _) =
            compute_error_matrix(&input, &target, layout, TileMetric::Sad, Backend::Serial)
                .unwrap();
        let (threads, _) = compute_error_matrix(
            &input,
            &target,
            layout,
            TileMetric::Sad,
            Backend::Threads(3),
        )
        .unwrap();
        let (gpu, trace) = compute_error_matrix(
            &input,
            &target,
            layout,
            TileMetric::Sad,
            Backend::GpuSim { workers: Some(2) },
        )
        .unwrap();
        assert_eq!(serial, threads);
        assert_eq!(serial, gpu);
        assert_eq!(trace.profile.launches, 1);
        assert!(trace.profile.ops > 0);
    }

    #[test]
    fn image_bytes_layout() {
        let img = mosaic_image::Image::from_vec(2, 1, vec![Rgb::new(1, 2, 3), Rgb::new(4, 5, 6)])
            .unwrap();
        assert_eq!(image_bytes(&img), vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn step2_profile_scales_with_s_squared() {
        let small = step2_profile::<mosaic_image::Gray>(TileLayout::new(64, 8).unwrap(), 1);
        let large = step2_profile::<mosaic_image::Gray>(TileLayout::new(64, 4).unwrap(), 1);
        // Same image, 4x the tiles => ~4x the ops (S^2 * M^2 = N^2 * S).
        assert!(large.ops > 3 * small.ops);
    }

    #[test]
    #[should_panic(expected = "overflows u32 entries")]
    fn gpu_path_rejects_overflowing_metric_like_serial_does() {
        // SSD on a 260x260 tile can exceed u32::MAX; both backends must
        // refuse rather than silently truncate.
        let img = mosaic_image::Image::from_fn(260, 260, |_, _| mosaic_image::Gray(0)).unwrap();
        let layout = TileLayout::new(260, 260).unwrap();
        let sim = GpuSim::with_workers(DeviceSpec::tesla_k40(), 1);
        let _ = gpu_error_matrix(&sim, &img, &img, layout, TileMetric::Ssd);
    }

    #[test]
    fn layout_mismatch_is_an_error() {
        let input = synth::gradient(32);
        let target = synth::gradient(16);
        let layout = TileLayout::new(32, 8).unwrap();
        assert!(
            compute_error_matrix(&input, &target, layout, TileMetric::Sad, Backend::Serial)
                .is_err()
        );
        let sim = GpuSim::with_workers(DeviceSpec::tesla_k40(), 1);
        assert!(gpu_error_matrix(&sim, &input, &target, layout, TileMetric::Sad).is_err());
    }
}
