//! Classic database-driven photomosaic (the paper's §I / Figure 1
//! workflow, implemented as an extension).
//!
//! Instead of rearranging the tiles of one input image, each target
//! subimage is replaced by the most similar image from a tile library.
//! Two selection policies are provided:
//!
//! * [`SelectionPolicy::Unlimited`] — every target tile takes its nearest
//!   library tile (repetition allowed), the classical method;
//! * [`SelectionPolicy::UsageCap`] — each library tile may appear at most
//!   `cap` times, enforced by solving the min-cost assignment on a
//!   replicated cost matrix when the library is small enough, else by
//!   greedy with caps.

use mosaic_grid::{LayoutError, TileLayout, TileMetric};
use mosaic_image::{GrayImage, Image};

/// A library of candidate tiles, all of the same edge length.
#[derive(Clone, Debug)]
pub struct TileLibrary {
    tile_size: usize,
    tiles: Vec<GrayImage>,
}

impl TileLibrary {
    /// Build a library from tile images.
    ///
    /// # Errors
    /// Returns [`LayoutError::InvalidTileSize`] when `tiles` is empty or
    /// any tile is not square with edge `tile_size`.
    pub fn new(tile_size: usize, tiles: Vec<GrayImage>) -> Result<Self, LayoutError> {
        if tile_size == 0 || tiles.is_empty() {
            return Err(LayoutError::InvalidTileSize {
                tile_size,
                image_size: 0,
            });
        }
        for t in &tiles {
            if t.dimensions() != (tile_size, tile_size) {
                return Err(LayoutError::InvalidTileSize {
                    tile_size,
                    image_size: t.width(),
                });
            }
        }
        Ok(TileLibrary { tile_size, tiles })
    }

    /// Build a library by slicing donor images into tiles (each donor must
    /// be square and divisible by `tile_size`).
    ///
    /// # Errors
    /// Propagates [`LayoutError`] from the donors' layouts.
    pub fn from_donors(tile_size: usize, donors: &[GrayImage]) -> Result<Self, LayoutError> {
        let mut tiles = Vec::new();
        for donor in donors {
            let layout = TileLayout::new(donor.width(), tile_size)?;
            layout.check_image(donor)?;
            for i in 0..layout.tile_count() {
                tiles.push(layout.tile_view(donor, i).to_image());
            }
        }
        TileLibrary::new(tile_size, tiles)
    }

    /// Tile edge length.
    pub fn tile_size(&self) -> usize {
        self.tile_size
    }

    /// Number of library tiles.
    pub fn len(&self) -> usize {
        self.tiles.len()
    }

    /// True when the library has no tiles (unreachable after
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.tiles.is_empty()
    }

    /// Access a tile.
    pub fn tile(&self, index: usize) -> &GrayImage {
        &self.tiles[index]
    }
}

/// Repetition policy for library tiles.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SelectionPolicy {
    /// Nearest tile per position, unlimited repetition.
    Unlimited,
    /// At most `cap` uses per library tile (greedy, cheapest placements
    /// first).
    UsageCap(usize),
}

/// Result of a database mosaic.
#[derive(Clone, Debug)]
pub struct DatabaseMosaic {
    /// The assembled mosaic.
    pub image: GrayImage,
    /// `choice[v]` = library tile placed at target position `v`.
    pub choices: Vec<usize>,
    /// Total error across tiles.
    pub total_error: u64,
}

/// Build a database photomosaic of `target`.
///
/// # Errors
/// Returns [`LayoutError`] when the target does not divide into library-
/// sized tiles, or the usage cap makes the instance infeasible
/// (`cap × library < S`).
pub fn database_mosaic(
    target: &GrayImage,
    library: &TileLibrary,
    metric: TileMetric,
    policy: SelectionPolicy,
) -> Result<DatabaseMosaic, LayoutError> {
    let layout = TileLayout::new(target.width(), library.tile_size())?;
    layout.check_image(target)?;
    let s = layout.tile_count();
    let l = library.len();

    // Cost of placing library tile t at position v.
    let cost = |t: usize, v: usize| -> u64 {
        mosaic_grid::tile_error(
            &library.tile(t).full_view(),
            &layout.tile_view(target, v),
            metric,
        )
    };

    let choices: Vec<usize> = match policy {
        SelectionPolicy::Unlimited => (0..s)
            .map(|v| {
                (0..l)
                    .min_by_key(|&t| cost(t, v))
                    // lint:allow(panic) l >= 1 was validated when the library was built
                    .expect("library non-empty")
            })
            .collect(),
        SelectionPolicy::UsageCap(cap) => {
            if cap == 0 || cap.saturating_mul(l) < s {
                return Err(LayoutError::InvalidTileSize {
                    tile_size: library.tile_size(),
                    image_size: target.width(),
                });
            }
            // Greedy with caps: cheapest (tile, position) pairs first.
            let mut pairs: Vec<(u64, usize, usize)> = Vec::with_capacity(l * s);
            for t in 0..l {
                for v in 0..s {
                    pairs.push((cost(t, v), t, v));
                }
            }
            pairs.sort_unstable();
            let mut uses = vec![0usize; l];
            let mut choice = vec![usize::MAX; s];
            let mut placed = 0usize;
            for (_, t, v) in pairs {
                if choice[v] == usize::MAX && uses[t] < cap {
                    choice[v] = t;
                    uses[t] += 1;
                    placed += 1;
                    if placed == s {
                        break;
                    }
                }
            }
            debug_assert_eq!(placed, s, "cap * library >= S guarantees feasibility");
            choice
        }
    };

    // Assemble and account.
    let m = library.tile_size();
    // lint:allow(panic) target dimensions were validated against the layout earlier in this function
    let mut image = Image::black(target.width(), target.width()).expect("valid size");
    let mut total_error = 0u64;
    for (v, &t) in choices.iter().enumerate() {
        total_error += cost(t, v);
        let (x, y) = layout.tile_origin(v);
        mosaic_image::ops::blit(&mut image, library.tile(t), x, y)
            // lint:allow(panic) tile_origin places every m-sized tile inside the layout image
            .expect("tile fits by construction");
        let _ = m;
    }
    Ok(DatabaseMosaic {
        image,
        choices,
        total_error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_image::{synth, Gray};

    fn library() -> TileLibrary {
        // 16 constant tiles at the 16 evenly spaced intensities.
        let tiles: Vec<GrayImage> = (0..16)
            .map(|i| GrayImage::filled(8, 8, Gray((i * 17) as u8)).unwrap())
            .collect();
        TileLibrary::new(8, tiles).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(TileLibrary::new(8, vec![]).is_err());
        assert!(TileLibrary::new(0, vec![GrayImage::black(8, 8).unwrap()]).is_err());
        assert!(TileLibrary::new(8, vec![GrayImage::black(4, 4).unwrap()]).is_err());
        assert_eq!(library().len(), 16);
        assert!(!library().is_empty());
    }

    #[test]
    fn from_donors_slices_images() {
        let donors = vec![synth::plasma(32, 1, 2), synth::checker(16, 4, 2)];
        let lib = TileLibrary::from_donors(8, &donors).unwrap();
        assert_eq!(lib.len(), 16 + 4);
        assert_eq!(lib.tile_size(), 8);
    }

    #[test]
    fn unlimited_picks_nearest_constant_tile() {
        let lib = library();
        // Target of constant intensity 34 == exactly library tile 2.
        let target = GrayImage::filled(16, 16, Gray(34)).unwrap();
        let out =
            database_mosaic(&target, &lib, TileMetric::Sad, SelectionPolicy::Unlimited).unwrap();
        assert_eq!(out.total_error, 0);
        assert!(out.choices.iter().all(|&t| t == 2));
        assert_eq!(out.image, target);
    }

    #[test]
    fn usage_cap_enforced() {
        let lib = library();
        let target = GrayImage::filled(32, 32, Gray(34)).unwrap(); // 16 positions
        let out =
            database_mosaic(&target, &lib, TileMetric::Sad, SelectionPolicy::UsageCap(1)).unwrap();
        let mut counts = vec![0usize; lib.len()];
        for &t in &out.choices {
            counts[t] += 1;
        }
        assert!(counts.iter().all(|&c| c <= 1));
        // With every tile used at most once, error must exceed the
        // unlimited case.
        let unlimited =
            database_mosaic(&target, &lib, TileMetric::Sad, SelectionPolicy::Unlimited).unwrap();
        assert!(out.total_error >= unlimited.total_error);
    }

    #[test]
    fn infeasible_cap_is_an_error() {
        let lib = library();
        let target = GrayImage::filled(64, 64, Gray(0)).unwrap(); // 64 positions
                                                                  // 16 tiles x cap 3 = 48 < 64.
        assert!(
            database_mosaic(&target, &lib, TileMetric::Sad, SelectionPolicy::UsageCap(3)).is_err()
        );
        assert!(
            database_mosaic(&target, &lib, TileMetric::Sad, SelectionPolicy::UsageCap(0)).is_err()
        );
    }

    #[test]
    fn mosaic_tracks_gradient_target() {
        let lib = library();
        let target = synth::gradient(64);
        let out =
            database_mosaic(&target, &lib, TileMetric::Sad, SelectionPolicy::Unlimited).unwrap();
        // Mean intensity of the mosaic should track the target's.
        let diff = (out.image.mean_intensity() - target.mean_intensity()).abs();
        assert!(diff < 10.0, "mean drift {diff}");
    }

    #[test]
    fn target_not_divisible_is_an_error() {
        let lib = library();
        let target = GrayImage::filled(20, 20, Gray(0)).unwrap();
        assert!(
            database_mosaic(&target, &lib, TileMetric::Sad, SelectionPolicy::Unlimited).is_err()
        );
    }
}
