//! Photomosaic generation by rearranging subimages.
//!
//! Reproduction of Yang, Ito & Nakano, *Photomosaic Generation by
//! Rearranging Subimages, with GPU Acceleration* (2017). Given an input
//! image and a target image of equal size, both divided into `S` tiles,
//! the library rearranges the input's tiles so the result reproduces the
//! target:
//!
//! 1. **Step 1** — divide both images into tiles
//!    ([`mosaic_grid::TileLayout`]) after optionally remapping the input's
//!    intensity distribution onto the target's ([`preprocess`], §II);
//! 2. **Step 2** — precompute the S×S error matrix `E(I_u, T_v)`
//!    ([`errors`]), serially, on CPU threads, or as the paper's CUDA
//!    kernel on the simulated device;
//! 3. **Step 3** — rearrange:
//!    * [`optimal`] — reduce to minimum-weight bipartite matching and
//!      solve exactly (§III);
//!    * [`local_search`] — Algorithm 1, the serial pairwise-swap
//!      approximation (§IV-A);
//!    * [`parallel_search`] — Algorithm 2, conflict-free swap batches from
//!      an edge coloring of K_S, run on CPU threads or as per-group kernel
//!      launches on the simulated device (§IV-B, §V).
//!
//! [`pipeline`] ties the steps together behind [`MosaicBuilder`];
//! [`report`] captures timings, totals and work profiles for the
//! experiment harness. [`database`], [`video`] and [`anneal`] implement
//! the extensions called out in DESIGN.md §7.
//!
//! # Example
//!
//! ```
//! use photomosaic::{generate, Algorithm, Backend, MosaicBuilder};
//! use mosaic_image::synth::Scene;
//!
//! // Synthetic stand-ins for the paper's Lena -> Sailboat pair.
//! let input = Scene::Portrait.render(64, 1);
//! let target = Scene::Regatta.render(64, 2);
//!
//! let config = MosaicBuilder::new()
//!     .grid(8)                              // 8 x 8 tiles
//!     .algorithm(Algorithm::ParallelSearch) // the paper's Algorithm 2
//!     .backend(Backend::Serial)
//!     .build();
//! let result = generate(&input, &target, &config).unwrap();
//!
//! assert_eq!(result.image.dimensions(), (64, 64));
//! // Eq. (2): the reported total equals the SAD of the rearranged image.
//! assert_eq!(
//!     result.report.total_error,
//!     mosaic_image::metrics::sad(&result.image, &target),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anneal;
pub mod config;
pub mod database;
pub mod errors;
pub mod job;
pub mod json;
pub mod library;
pub mod local_search;
pub mod multires;
pub mod optimal;
pub mod oriented;
pub mod parallel_search;
pub mod pipeline;
pub mod pipeline_rgb;
pub mod preprocess;
pub mod report;
pub mod video;

pub use config::{Algorithm, Backend, MosaicBuilder, MosaicConfig, Preprocess};
pub use job::{ImageSource, JobResult, JobSpec};
pub use json::Json;
pub use library::assemble_from_tiles;
pub use mosaic_grid::{Deadline, DeadlineExceeded};
pub use pipeline::{
    generate, generate_bounded, generate_bounded_in, generate_returning_matrix,
    generate_returning_matrix_bounded, generate_returning_matrix_bounded_in, generate_with_matrix,
    generate_with_matrix_bounded, generate_with_matrix_bounded_in, GenerateError, MosaicResult,
};
pub use pipeline_rgb::{generate_rgb, RgbMosaicResult};
pub use report::GenerationReport;
