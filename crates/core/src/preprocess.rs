//! §II pre-processing: adjust the input image's intensity distribution.
//!
//! "If the distribution of an input image greatly differs from a target
//! image, it is difficult to rearrange tiles of the input image to
//! reproduce the target image. Therefore, before rearranging the tiles of
//! an input image, we adjust the distribution of an input image to that of
//! a target image using the histogram equalization." — §II. The remapping
//! of one distribution onto another is histogram *specification*; both it
//! and plain equalization are available, selected by
//! [`crate::config::Preprocess`].

use crate::config::Preprocess;
use mosaic_image::histogram::{equalize, match_histogram, match_histogram_rgb};
use mosaic_image::{GrayImage, RgbImage};

/// Apply the configured pre-processing to a grayscale input image.
pub fn preprocess_gray(input: &GrayImage, target: &GrayImage, mode: Preprocess) -> GrayImage {
    match mode {
        Preprocess::MatchTarget => match_histogram(input, target),
        Preprocess::Equalize => equalize(input),
        Preprocess::None => input.clone(),
    }
}

/// Apply the configured pre-processing to an RGB input image (per-channel
/// specification for the color extension).
pub fn preprocess_rgb(input: &RgbImage, target: &RgbImage, mode: Preprocess) -> RgbImage {
    match mode {
        Preprocess::MatchTarget => match_histogram_rgb(input, target),
        Preprocess::Equalize => {
            // Equalize the luma-derived distribution per channel by
            // matching each channel onto its own equalized form.
            let gray = input.to_gray();
            let eq = equalize(&gray);
            // Scale channels by the luma LUT ratio via per-channel
            // specification against the equalized gray image promoted to RGB.
            let reference = eq.map(mosaic_image::Rgb::from);
            match_histogram_rgb(input, &reference)
        }
        Preprocess::None => input.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_image::histogram::Histogram;
    use mosaic_image::synth;

    #[test]
    fn none_is_identity() {
        let input = synth::portrait(32, 1);
        let target = synth::regatta(32, 2);
        assert_eq!(preprocess_gray(&input, &target, Preprocess::None), input);
    }

    #[test]
    fn match_target_moves_mean_toward_target() {
        let input = synth::portrait(64, 1);
        let target = synth::regatta(64, 2);
        let out = preprocess_gray(&input, &target, Preprocess::MatchTarget);
        let m_out = Histogram::of_luma(&out).mean();
        let m_target = Histogram::of_luma(&target).mean();
        let m_input = Histogram::of_luma(&input).mean();
        assert!(
            (m_out - m_target).abs() <= (m_input - m_target).abs() + 1.0,
            "matching moved the mean away from the target"
        );
    }

    #[test]
    fn equalize_expands_range() {
        let input = synth::checker(64, 8, 3); // concentrated bimodal
        let target = synth::regatta(64, 2);
        let out = preprocess_gray(&input, &target, Preprocess::Equalize);
        let h = Histogram::of_luma(&out);
        assert_eq!(h.min_value(), Some(0));
        assert!(h.max_value().unwrap() >= 250);
    }

    #[test]
    fn rgb_paths_run() {
        let gray_in = synth::portrait(32, 1);
        let gray_tg = synth::regatta(32, 2);
        let input = synth::tint(
            &gray_in,
            mosaic_image::Rgb::new(20, 10, 40),
            mosaic_image::Rgb::new(220, 210, 190),
        );
        let target = synth::tint(
            &gray_tg,
            mosaic_image::Rgb::new(0, 30, 60),
            mosaic_image::Rgb::new(250, 240, 230),
        );
        for mode in [
            Preprocess::MatchTarget,
            Preprocess::Equalize,
            Preprocess::None,
        ] {
            let out = preprocess_rgb(&input, &target, mode);
            assert_eq!(out.dimensions(), input.dimensions());
        }
        assert_eq!(preprocess_rgb(&input, &target, Preprocess::None), input);
    }
}
