//! §III — the optimization algorithm.
//!
//! "Consider a weighted complete bipartite graph (V₁, V₂, E) … obtaining
//! the best rearranged image R* is finding a matching of minimum weight."
//! The Step-2 error matrix *is* the weight matrix of that bipartite graph
//! (rows = input tiles, columns = target positions), so the reduction is a
//! type conversion followed by an exact assignment solve.
//!
//! The paper used Blossom V as its matcher; on bipartite instances every
//! exact solver returns the same optimum, so the solver is pluggable
//! ([`mosaic_assign::SolverKind`]) — see DESIGN.md §2.

use crate::local_search::SearchOutcome;
use mosaic_assign::{CostMatrix, Solver, SolverKind, SparseAuctionSolver};
use mosaic_grid::ErrorMatrix;

/// Convert the Step-2 error matrix into an assignment cost matrix.
pub fn to_cost_matrix(matrix: &ErrorMatrix) -> CostMatrix {
    CostMatrix::from_vec(matrix.size(), matrix.as_slice().to_vec())
}

/// Solve Step 3 exactly with the chosen solver.
///
/// The returned [`SearchOutcome`] reuses the local-search result type:
/// `sweeps`/`swaps` are zero (no iterative refinement happens here).
pub fn optimal_rearrangement(matrix: &ErrorMatrix, solver: SolverKind) -> SearchOutcome {
    let cost = to_cost_matrix(matrix);
    let solution = solver.build().solve(&cost);
    let assignment = solution.col_to_row();
    SearchOutcome {
        total: solution.total(),
        assignment,
        sweeps: 0,
        swaps: 0,
    }
}

/// Candidate-pruned Step 3: keep each input tile's `k` cheapest target
/// positions and solve the pruned graph with the sparse auction. An upper
/// bound on the dense optimum; equal to it when `k >= S`.
pub fn sparse_rearrangement(matrix: &ErrorMatrix, k: usize) -> SearchOutcome {
    let cost = to_cost_matrix(matrix);
    let solver = SparseAuctionSolver {
        k: k.max(1),
        scaling_factor: 4,
    };
    let solution = solver.solve(&cost);
    SearchOutcome {
        total: solution.total(),
        assignment: solution.col_to_row(),
        sweeps: 0,
        swaps: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local_search::local_search;

    fn random_matrix(n: usize, seed: u64, max: u64) -> ErrorMatrix {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % max) as u32
        };
        ErrorMatrix::from_vec(n, (0..n * n).map(|_| next()).collect())
    }

    #[test]
    fn cost_matrix_conversion_preserves_entries() {
        let m = random_matrix(5, 3, 100);
        let c = to_cost_matrix(&m);
        for u in 0..5 {
            for v in 0..5 {
                assert_eq!(c.get(u, v), m.get(u, v));
            }
        }
    }

    #[test]
    fn all_exact_solvers_agree() {
        let m = random_matrix(24, 9, 10_000);
        let totals: Vec<u64> = [
            SolverKind::Hungarian,
            SolverKind::JonkerVolgenant,
            SolverKind::Auction,
        ]
        .iter()
        .map(|&k| optimal_rearrangement(&m, k).total)
        .collect();
        assert_eq!(totals[0], totals[1]);
        assert_eq!(totals[0], totals[2]);
    }

    #[test]
    fn optimal_never_worse_than_local_search() {
        // Table I's headline property: the optimization algorithm's total
        // is a lower bound on the approximation algorithm's.
        for seed in [1u64, 7, 42, 99] {
            let m = random_matrix(30, seed, 5_000);
            let opt = optimal_rearrangement(&m, SolverKind::JonkerVolgenant);
            let approx = local_search(&m);
            assert!(
                opt.total <= approx.total,
                "seed {seed}: optimal {} > approx {}",
                opt.total,
                approx.total
            );
        }
    }

    #[test]
    fn assignment_total_is_consistent() {
        let m = random_matrix(16, 5, 1000);
        let out = optimal_rearrangement(&m, SolverKind::Hungarian);
        assert_eq!(m.assignment_total(&out.assignment), out.total);
        assert_eq!(out.sweeps, 0);
        assert_eq!(out.swaps, 0);
    }

    #[test]
    fn sparse_rearrangement_bounds() {
        let m = random_matrix(32, 8, 10_000);
        let opt = optimal_rearrangement(&m, SolverKind::JonkerVolgenant).total;
        let pruned = sparse_rearrangement(&m, 8).total;
        let full = sparse_rearrangement(&m, 32).total;
        assert!(pruned >= opt);
        assert_eq!(full, opt);
    }

    #[test]
    fn greedy_is_feasible_but_possibly_worse() {
        let m = random_matrix(20, 11, 1000);
        let greedy = optimal_rearrangement(&m, SolverKind::Greedy);
        let exact = optimal_rearrangement(&m, SolverKind::Hungarian);
        assert!(greedy.total >= exact.total);
        assert_eq!(m.assignment_total(&greedy.assignment), greedy.total);
    }
}
