//! Reusable job descriptions for batch execution.
//!
//! `mosaic-service` (and any other batch driver) talks in [`JobSpec`]s: a
//! self-contained, JSON-serializable description of one generation — the
//! two images (either synthetic scene recipes or literal pixels), plus the
//! [`MosaicConfig`]. [`JobSpec::cache_key`] content-addresses the part of
//! the job that determines the Step-2 error matrix, so executors can reuse
//! matrices across identical submissions via
//! [`generate_with_matrix`](crate::pipeline::generate_with_matrix).

use crate::config::MosaicConfig;
use crate::json::Json;
use crate::pipeline::MosaicResult;
use mosaic_image::synth::Scene;
use mosaic_image::{Gray, GrayImage};

/// Where a job's image comes from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ImageSource {
    /// Render a deterministic synthetic scene (cheap to ship over the
    /// wire: three scalars).
    Synth {
        /// Scene role.
        scene: Scene,
        /// Edge length in pixels.
        size: usize,
        /// Render seed.
        seed: u64,
    },
    /// Literal grayscale pixels, row-major, `size × size`.
    Pixels {
        /// Edge length in pixels.
        size: usize,
        /// `size * size` intensity bytes.
        pixels: Vec<u8>,
    },
}

impl ImageSource {
    /// Materialize the image.
    ///
    /// # Errors
    /// Returns a description when a `Pixels` source's byte count does not
    /// match its declared size.
    pub fn resolve(&self) -> Result<GrayImage, String> {
        match self {
            ImageSource::Synth { scene, size, seed } => {
                if *size == 0 {
                    return Err("image size must be positive".to_string());
                }
                Ok(scene.render(*size, *seed))
            }
            ImageSource::Pixels { size, pixels } => {
                let data: Vec<Gray> = pixels.iter().map(|&b| Gray(b)).collect();
                GrayImage::from_vec(*size, *size, data)
                    .map_err(|e| format!("bad pixel payload: {e:?}"))
            }
        }
    }

    /// Serialize for the wire (pixels are hex-encoded).
    pub fn to_json(&self) -> Json {
        match self {
            ImageSource::Synth { scene, size, seed } => Json::obj([
                ("kind", Json::from("synth")),
                ("scene", Json::from(scene.name())),
                ("size", Json::from(*size)),
                ("seed", Json::Str(seed.to_string())),
            ]),
            ImageSource::Pixels { size, pixels } => Json::obj([
                ("kind", Json::from("pixels")),
                ("size", Json::from(*size)),
                ("pixels", Json::Str(hex_encode(pixels))),
            ]),
        }
    }

    /// Parse the shape produced by [`to_json`](Self::to_json).
    ///
    /// # Errors
    /// Returns a description of the first malformed or unknown field.
    pub fn from_json(value: &Json) -> Result<ImageSource, String> {
        let kind = value
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("image source needs a \"kind\" string")?;
        match kind {
            "synth" => {
                let scene_name = value
                    .get("scene")
                    .and_then(Json::as_str)
                    .ok_or("synth source needs a \"scene\" string")?;
                let scene = Scene::ALL
                    .into_iter()
                    .find(|s| s.name() == scene_name)
                    .ok_or_else(|| format!("unknown scene {scene_name:?}"))?;
                let size = value
                    .get("size")
                    .and_then(Json::as_u64)
                    .ok_or("synth source needs an integer \"size\"")?
                    as usize;
                let seed = match value.get("seed") {
                    None => 0,
                    Some(Json::Str(s)) => s
                        .parse::<u64>()
                        .map_err(|_| format!("invalid seed {s:?}"))?,
                    Some(other) => other.as_u64().ok_or("invalid seed")?,
                };
                Ok(ImageSource::Synth { scene, size, seed })
            }
            "pixels" => {
                let size = value
                    .get("size")
                    .and_then(Json::as_u64)
                    .ok_or("pixels source needs an integer \"size\"")?
                    as usize;
                let hex = value
                    .get("pixels")
                    .and_then(Json::as_str)
                    .ok_or("pixels source needs a \"pixels\" hex string")?;
                Ok(ImageSource::Pixels {
                    size,
                    pixels: hex_decode(hex)?,
                })
            }
            other => Err(format!("unknown image source kind {other:?}")),
        }
    }
}

/// One generation job: two image sources plus the pipeline configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// The image whose tiles are rearranged.
    pub input: ImageSource,
    /// The image being reproduced.
    pub target: ImageSource,
    /// Pipeline configuration.
    pub config: MosaicConfig,
}

impl JobSpec {
    /// Materialize both images.
    ///
    /// # Errors
    /// Propagates [`ImageSource::resolve`] failures, labeled by role.
    pub fn resolve(&self) -> Result<(GrayImage, GrayImage), String> {
        let input = self.input.resolve().map_err(|e| format!("input: {e}"))?;
        let target = self.target.resolve().map_err(|e| format!("target: {e}"))?;
        Ok((input, target))
    }

    /// Content hash (FNV-1a, 64-bit) of everything the Step-2 error
    /// matrix depends on: both image sources, the grid, the preprocess
    /// mode and the tile metric.
    ///
    /// The Step-3 algorithm and execution backend are deliberately
    /// *excluded* — they do not affect the matrix, so jobs that differ
    /// only in algorithm or backend share a cache entry. The metric and
    /// the target image are *included* even though the issue's shorthand
    /// names only `(input, grid, preprocess)`, because the matrix
    /// compares preprocessed input tiles against target tiles under the
    /// metric; omitting either would alias distinct matrices.
    pub fn cache_key(&self) -> u64 {
        let mut h = Fnv1a::new();
        hash_source(&mut h, &self.input);
        hash_source(&mut h, &self.target);
        h.write_u64(self.config.grid as u64);
        h.write_bytes(self.config.preprocess.name().as_bytes());
        h.write_bytes(self.config.metric.name().as_bytes());
        h.finish()
    }

    /// Serialize for the wire.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("input", self.input.to_json()),
            ("target", self.target.to_json()),
            ("config", self.config.to_json()),
        ])
    }

    /// Parse the shape produced by [`to_json`](Self::to_json). A missing
    /// `config` falls back to the defaults.
    ///
    /// # Errors
    /// Returns a description of the first malformed field.
    pub fn from_json(value: &Json) -> Result<JobSpec, String> {
        let input =
            ImageSource::from_json(value.get("input").ok_or("job needs an \"input\" source")?)?;
        let target =
            ImageSource::from_json(value.get("target").ok_or("job needs a \"target\" source")?)?;
        let config = match value.get("config") {
            Some(c) => MosaicConfig::from_json(c)?,
            None => MosaicConfig::default(),
        };
        Ok(JobSpec {
            input,
            target,
            config,
        })
    }
}

/// A finished job, ready for the wire: the rearranged image, the
/// assignment and the full [`GenerationReport`](crate::GenerationReport)
/// (as JSON).
#[derive(Clone, Debug)]
pub struct JobResult {
    /// The rearranged image.
    pub image: GrayImage,
    /// The tile assignment (`assignment[v] = u`).
    pub assignment: Vec<usize>,
    /// Report JSON (see `GenerationReport::to_json`).
    pub report: Json,
}

impl From<MosaicResult> for JobResult {
    fn from(result: MosaicResult) -> Self {
        JobResult {
            report: result.report.to_json(),
            image: result.image,
            assignment: result.assignment,
        }
    }
}

impl JobResult {
    /// Serialize for the wire (pixels hex-encoded).
    pub fn to_json(&self) -> Json {
        let bytes: Vec<u8> = self.image.pixels().iter().map(|p| p.0).collect();
        Json::obj([
            (
                "image",
                Json::obj([
                    ("size", Json::from(self.image.width())),
                    ("pixels", Json::Str(hex_encode(&bytes))),
                ]),
            ),
            (
                "assignment",
                Json::Arr(self.assignment.iter().map(|&u| Json::from(u)).collect()),
            ),
            ("report", self.report.clone()),
        ])
    }

    /// Parse the shape produced by [`to_json`](Self::to_json).
    ///
    /// # Errors
    /// Returns a description of the first malformed field.
    pub fn from_json(value: &Json) -> Result<JobResult, String> {
        let image = value.get("image").ok_or("result needs an \"image\"")?;
        let size = image
            .get("size")
            .and_then(Json::as_u64)
            .ok_or("result image needs an integer \"size\"")? as usize;
        let hex = image
            .get("pixels")
            .and_then(Json::as_str)
            .ok_or("result image needs a \"pixels\" hex string")?;
        let data: Vec<Gray> = hex_decode(hex)?.into_iter().map(Gray).collect();
        let image = GrayImage::from_vec(size, size, data)
            .map_err(|e| format!("bad result image: {e:?}"))?;
        let assignment = value
            .get("assignment")
            .and_then(Json::as_arr)
            .ok_or("result needs an \"assignment\" array")?
            .iter()
            .map(|v| v.as_u64().map(|u| u as usize).ok_or("bad assignment entry"))
            .collect::<Result<Vec<usize>, &str>>()?;
        let report = value
            .get("report")
            .cloned()
            .ok_or("result needs a \"report\"")?;
        Ok(JobResult {
            image,
            assignment,
            report,
        })
    }
}

fn hash_source(h: &mut Fnv1a, source: &ImageSource) {
    match source {
        ImageSource::Synth { scene, size, seed } => {
            h.write_bytes(b"synth");
            h.write_bytes(scene.name().as_bytes());
            h.write_u64(*size as u64);
            h.write_u64(*seed);
        }
        ImageSource::Pixels { size, pixels } => {
            h.write_bytes(b"pixels");
            h.write_u64(*size as u64);
            h.write_bytes(pixels);
        }
    }
}

/// FNV-1a 64-bit hasher (std's `DefaultHasher` is not guaranteed stable
/// across releases; cache keys should be).
struct Fnv1a {
    state: u64,
}

impl Fnv1a {
    fn new() -> Self {
        Fnv1a {
            state: 0xcbf2_9ce4_8422_2325,
        }
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Length terminator so concatenations can't collide trivially.
        self.write_u64(bytes.len() as u64);
    }

    fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.state
    }
}

/// Encode bytes as lowercase hex.
pub fn hex_encode(bytes: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(DIGITS[usize::from(b >> 4)] as char);
        out.push(DIGITS[usize::from(b & 0xF)] as char);
    }
    out
}

/// Decode lowercase/uppercase hex into bytes.
///
/// # Errors
/// Returns a description on odd length or non-hex characters.
pub fn hex_decode(hex: &str) -> Result<Vec<u8>, String> {
    let bytes = hex.as_bytes();
    if !bytes.len().is_multiple_of(2) {
        return Err("hex string has odd length".to_string());
    }
    let digit = |b: u8| -> Result<u8, String> {
        (b as char)
            .to_digit(16)
            .map(|d| d as u8)
            .ok_or_else(|| format!("invalid hex byte {:?}", b as char))
    };
    bytes
        .chunks_exact(2)
        .map(|pair| Ok(digit(pair[0])? << 4 | digit(pair[1])?))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Algorithm, Backend, MosaicBuilder};
    use mosaic_grid::TileMetric;

    fn sample_spec() -> JobSpec {
        JobSpec {
            input: ImageSource::Synth {
                scene: Scene::Portrait,
                size: 32,
                seed: 1,
            },
            target: ImageSource::Synth {
                scene: Scene::Regatta,
                size: 32,
                seed: 2,
            },
            config: MosaicBuilder::new()
                .grid(4)
                .backend(Backend::Serial)
                .build(),
        }
    }

    #[test]
    fn hex_roundtrips() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(hex_decode(&hex_encode(&data)).unwrap(), data);
        assert_eq!(hex_encode(&[0x0f, 0xa0]), "0fa0");
        assert!(hex_decode("abc").is_err());
        assert!(hex_decode("zz").is_err());
    }

    #[test]
    fn spec_roundtrips_through_json_text() {
        let mut spec = sample_spec();
        spec.input = ImageSource::Pixels {
            size: 2,
            pixels: vec![1, 2, 3, 4],
        };
        let text = spec.to_json().encode();
        let back = JobSpec::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn synth_sources_resolve_deterministically() {
        let spec = sample_spec();
        let (a_in, a_tg) = spec.resolve().unwrap();
        let (b_in, b_tg) = spec.resolve().unwrap();
        assert_eq!(a_in, b_in);
        assert_eq!(a_tg, b_tg);
        assert_eq!(a_in.dimensions(), (32, 32));
    }

    #[test]
    fn bad_sources_are_errors() {
        let bad = ImageSource::Pixels {
            size: 3,
            pixels: vec![0; 8], // 3x3 needs 9
        };
        assert!(bad.resolve().is_err());
        let zero = ImageSource::Synth {
            scene: Scene::Fur,
            size: 0,
            seed: 0,
        };
        assert!(zero.resolve().is_err());
    }

    #[test]
    fn cache_key_tracks_matrix_inputs_only() {
        let base = sample_spec();
        let key = base.cache_key();
        assert_eq!(key, sample_spec().cache_key(), "key must be deterministic");

        // Fields the matrix depends on change the key …
        let mut other = base.clone();
        other.config.grid = 8;
        assert_ne!(other.cache_key(), key);
        let mut other = base.clone();
        other.config.metric = TileMetric::Ssd;
        assert_ne!(other.cache_key(), key);
        let mut other = base.clone();
        other.config.preprocess = crate::config::Preprocess::None;
        assert_ne!(other.cache_key(), key);
        let mut other = base.clone();
        other.input = ImageSource::Synth {
            scene: Scene::Portrait,
            size: 32,
            seed: 99,
        };
        assert_ne!(other.cache_key(), key);
        let mut other = base.clone();
        other.target = ImageSource::Synth {
            scene: Scene::Checker,
            size: 32,
            seed: 2,
        };
        assert_ne!(other.cache_key(), key);

        // … fields it does not depend on do not.
        let mut other = base.clone();
        other.config.algorithm = Algorithm::LocalSearch;
        assert_eq!(other.cache_key(), key);
        let mut other = base;
        other.config.backend = Backend::Threads(4);
        assert_eq!(other.cache_key(), key);
    }

    #[test]
    fn pixel_sources_with_same_content_share_a_key() {
        let rendered = Scene::Plasma.render(16, 7);
        let bytes: Vec<u8> = rendered.pixels().iter().map(|p| p.0).collect();
        let mk = || JobSpec {
            input: ImageSource::Pixels {
                size: 16,
                pixels: bytes.clone(),
            },
            target: ImageSource::Synth {
                scene: Scene::Checker,
                size: 16,
                seed: 0,
            },
            config: MosaicBuilder::new().grid(4).build(),
        };
        assert_eq!(mk().cache_key(), mk().cache_key());
    }

    #[test]
    fn job_result_roundtrips_through_json_text() {
        let spec = sample_spec();
        let (input, target) = spec.resolve().unwrap();
        let result = crate::generate(&input, &target, &spec.config).unwrap();
        let job: JobResult = result.clone().into();
        let text = job.to_json().encode();
        let back = JobResult::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.image, result.image);
        assert_eq!(back.assignment, result.assignment);
        assert_eq!(
            back.report.get("total_error").unwrap().as_u64(),
            Some(result.report.total_error)
        );
    }
}
