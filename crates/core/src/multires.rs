//! Hierarchical (coarse-to-fine) rearrangement — a scalability extension.
//!
//! The exact reduction of §III costs O(S³) time and O(S²) memory for the
//! matrix alone; at the paper's S = 64² that is 16.7 M entries and, with
//! Blossom V, twenty minutes. This module trades optimality for scale:
//!
//! 1. view the same images at a coarser grid (tile edge `2M`) and solve
//!    that `S/4`-tile problem recursively;
//! 2. each matched (input super-tile → target super-position) pair then
//!    scatters its 4 member tiles with an exact 4×4 assignment computed
//!    directly from the pixels.
//!
//! The recursion bottoms out at `leaf_grid`, where the dense exact solver
//! runs. Total work is O(S·M²) per level with log₂(g/leaf) levels — no
//! S×S matrix is ever materialized above the leaf. Quality sits between
//! the greedy baseline and the global optimum (tested), because
//! cross-super-tile placements are forbidden above the leaf level.

use crate::local_search::SearchOutcome;
use mosaic_assign::jv::solve_jv;
use mosaic_assign::CostMatrix;
use mosaic_grid::{tile_error, LayoutError, TileLayout, TileMetric};
use mosaic_image::{GrayImage, Pixel};

/// Configuration for the hierarchical solver.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct MultiresConfig {
    /// Grid size at which the dense exact solver takes over (must divide
    /// the full grid by a power of two). The default, 16, means a 256-tile
    /// dense problem at the root.
    pub leaf_grid: usize,
    /// Tile metric for every level.
    pub metric: TileMetric,
}

impl Default for MultiresConfig {
    fn default() -> Self {
        MultiresConfig {
            leaf_grid: 16,
            metric: TileMetric::Sad,
        }
    }
}

/// Hierarchically rearrange `input`'s tiles to reproduce `target`.
///
/// # Errors
/// Returns [`LayoutError`] when the images do not match `layout`, or when
/// `layout`'s grid is not `leaf_grid × 2^k` for some `k ≥ 0`.
pub fn hierarchical_rearrangement<P: Pixel>(
    input: &mosaic_image::Image<P>,
    target: &mosaic_image::Image<P>,
    layout: TileLayout,
    config: MultiresConfig,
) -> Result<SearchOutcome, LayoutError> {
    layout.check_image(input)?;
    layout.check_image(target)?;
    let grid = layout.tiles_per_side();
    let leaf = config.leaf_grid.max(1);
    // grid must be leaf * 2^k.
    let mut g = grid;
    while g > leaf && g.is_multiple_of(2) {
        g /= 2;
    }
    if g != leaf && grid > leaf {
        return Err(LayoutError::NotDivisible {
            image_size: layout.image_size(),
            tile_size: leaf,
        });
    }

    let assignment = solve_level(input, target, layout, config)?;
    let total: u64 = assignment
        .iter()
        .enumerate()
        .map(|(v, &u)| {
            tile_error(
                &layout.tile_view(input, u),
                &layout.tile_view(target, v),
                config.metric,
            )
        })
        .sum();
    Ok(SearchOutcome {
        assignment,
        total,
        sweeps: 0,
        swaps: 0,
    })
}

fn solve_level<P: Pixel>(
    input: &mosaic_image::Image<P>,
    target: &mosaic_image::Image<P>,
    layout: TileLayout,
    config: MultiresConfig,
) -> Result<Vec<usize>, LayoutError> {
    let grid = layout.tiles_per_side();
    if grid <= config.leaf_grid || !grid.is_multiple_of(2) {
        // Dense exact solve at the leaf.
        return Ok(dense_assignment(input, target, layout, config.metric));
    }
    // Coarser view: tile edge doubles, grid halves, same images.
    let coarse_layout = TileLayout::new(layout.image_size(), layout.tile_size() * 2)?;
    let coarse = solve_level(input, target, coarse_layout, config)?;

    // Refine: each coarse pair places its 2x2 member tiles exactly.
    let fine_count = layout.tile_count();
    let mut assignment = vec![usize::MAX; fine_count];
    let cg = coarse_layout.tiles_per_side();
    for (v_coarse, &u_coarse) in coarse.iter().enumerate() {
        let (vr, vc) = (v_coarse / cg, v_coarse % cg);
        let (ur, uc) = (u_coarse / cg, u_coarse % cg);
        // Member tile indices in the fine grid (2x2 block).
        let members = |r0: usize, c0: usize| -> [usize; 4] {
            [
                layout.tile_index(2 * r0, 2 * c0),
                layout.tile_index(2 * r0, 2 * c0 + 1),
                layout.tile_index(2 * r0 + 1, 2 * c0),
                layout.tile_index(2 * r0 + 1, 2 * c0 + 1),
            ]
        };
        let inputs = members(ur, uc);
        let positions = members(vr, vc);
        let cost = CostMatrix::from_fn(4, |i, j| {
            tile_error(
                &layout.tile_view(input, inputs[i]),
                &layout.tile_view(target, positions[j]),
                config.metric,
            ) as u32
        });
        let local = solve_jv(&cost);
        for (i, &j) in local.iter().enumerate() {
            assignment[positions[j]] = inputs[i];
        }
    }
    debug_assert!(assignment.iter().all(|&u| u != usize::MAX));
    Ok(assignment)
}

fn dense_assignment<P: Pixel>(
    input: &mosaic_image::Image<P>,
    target: &mosaic_image::Image<P>,
    layout: TileLayout,
    metric: TileMetric,
) -> Vec<usize> {
    let s = layout.tile_count();
    let cost = CostMatrix::from_fn(s, |u, v| {
        tile_error(
            &layout.tile_view(input, u),
            &layout.tile_view(target, v),
            metric,
        ) as u32
    });
    let row_to_col = solve_jv(&cost);
    let mut col_to_row = vec![0usize; s];
    for (r, &c) in row_to_col.iter().enumerate() {
        col_to_row[c] = r;
    }
    col_to_row
}

/// Hierarchical solve followed by an Algorithm-1 polish.
///
/// The pure hierarchy never moves a tile outside its coarse block, which
/// is nearly free on raw image pairs (different DC levels dominate the
/// matrix) but can cost a lot once histogram matching has removed the DC
/// differences and high-frequency structure decides placements (measured:
/// 0.3 % vs tens of percent over optimal). Polishing with the
/// unconstrained pairwise-swap descent repairs that at the cost of
/// materializing the full S×S matrix — still much cheaper than the O(S³)
/// exact solve, but no longer O(S) memory. Pick per workload.
///
/// # Errors
/// Returns [`LayoutError`] under the same conditions as
/// [`hierarchical_rearrangement`].
pub fn hierarchical_with_polish<P: Pixel>(
    input: &mosaic_image::Image<P>,
    target: &mosaic_image::Image<P>,
    layout: TileLayout,
    config: MultiresConfig,
) -> Result<SearchOutcome, LayoutError> {
    let seed = hierarchical_rearrangement(input, target, layout, config)?;
    let matrix = mosaic_grid::build_error_matrix(input, target, layout, config.metric)?;
    Ok(crate::local_search::local_search_from(
        &matrix,
        seed.assignment,
    ))
}

/// Convenience wrapper over grayscale images with histogram matching and
/// polish, the hierarchical counterpart of [`crate::generate`]'s
/// Step 1–3.
///
/// # Errors
/// Propagates [`LayoutError`] from geometry validation.
pub fn generate_hierarchical(
    input: &GrayImage,
    target: &GrayImage,
    grid: usize,
    config: MultiresConfig,
) -> Result<(GrayImage, SearchOutcome), LayoutError> {
    let layout = TileLayout::with_grid(target.width(), grid)?;
    let prepared = mosaic_image::histogram::match_histogram(input, target);
    let outcome = hierarchical_with_polish(&prepared, target, layout, config)?;
    let image = mosaic_grid::assemble(&prepared, layout, &outcome.assignment)?;
    Ok((image, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimal::optimal_rearrangement;
    use mosaic_assign::SolverKind;
    use mosaic_grid::assemble;
    use mosaic_grid::build_error_matrix;
    use mosaic_image::{metrics, synth};

    fn pair(n: usize) -> (GrayImage, GrayImage) {
        (synth::portrait(n, 1), synth::regatta(n, 2))
    }

    #[test]
    fn leaf_level_equals_dense_optimum() {
        let (input, target) = pair(64);
        let layout = TileLayout::with_grid(64, 8).unwrap();
        let config = MultiresConfig {
            leaf_grid: 8,
            metric: TileMetric::Sad,
        };
        let hier = hierarchical_rearrangement(&input, &target, layout, config).unwrap();
        let matrix = build_error_matrix(&input, &target, layout, TileMetric::Sad).unwrap();
        let opt = optimal_rearrangement(&matrix, SolverKind::JonkerVolgenant);
        assert_eq!(hier.total, opt.total);
    }

    #[test]
    fn assignment_is_a_permutation_and_total_consistent() {
        let (input, target) = pair(128);
        let layout = TileLayout::with_grid(128, 16).unwrap();
        let config = MultiresConfig {
            leaf_grid: 4,
            metric: TileMetric::Sad,
        };
        let out = hierarchical_rearrangement(&input, &target, layout, config).unwrap();
        assert!(mosaic_grid::assemble::is_permutation(
            &out.assignment,
            layout.tile_count()
        ));
        let rearranged = assemble(&input, layout, &out.assignment).unwrap();
        assert_eq!(metrics::sad(&rearranged, &target), out.total);
    }

    #[test]
    fn quality_between_optimal_and_random() {
        let (input, target) = pair(128);
        let layout = TileLayout::with_grid(128, 16).unwrap();
        let matrix = build_error_matrix(&input, &target, layout, TileMetric::Sad).unwrap();
        let opt = optimal_rearrangement(&matrix, SolverKind::JonkerVolgenant).total;
        let identity_total = matrix.assignment_total(&(0..layout.tile_count()).collect::<Vec<_>>());
        let config = MultiresConfig {
            leaf_grid: 4,
            metric: TileMetric::Sad,
        };
        let hier = hierarchical_rearrangement(&input, &target, layout, config)
            .unwrap()
            .total;
        assert!(hier >= opt);
        assert!(
            hier <= identity_total,
            "hierarchical ({hier}) should beat no rearrangement ({identity_total})"
        );
        // Empirically the hierarchy stays within a modest factor of optimal.
        assert!(hier <= opt * 2, "hier {hier} vs opt {opt}");
    }

    #[test]
    fn invalid_leaf_relationship_is_an_error() {
        let (input, target) = pair(96); // grid 12 = 3 * 2^2; leaf 8 unreachable
        let layout = TileLayout::with_grid(96, 12).unwrap();
        let config = MultiresConfig {
            leaf_grid: 8,
            metric: TileMetric::Sad,
        };
        assert!(hierarchical_rearrangement(&input, &target, layout, config).is_err());
    }

    #[test]
    fn odd_grid_below_leaf_is_dense() {
        // grid 3 < leaf 16: direct dense solve, no recursion.
        let (input, target) = pair(48);
        let layout = TileLayout::with_grid(48, 3).unwrap();
        let out =
            hierarchical_rearrangement(&input, &target, layout, MultiresConfig::default()).unwrap();
        let matrix = build_error_matrix(&input, &target, layout, TileMetric::Sad).unwrap();
        let opt = optimal_rearrangement(&matrix, SolverKind::JonkerVolgenant);
        assert_eq!(out.total, opt.total);
    }

    #[test]
    fn polish_only_improves_and_is_swap_optimal() {
        let input = synth::portrait(128, 3);
        let target = synth::regatta(128, 4);
        let prepared = mosaic_image::histogram::match_histogram(&input, &target);
        let layout = TileLayout::with_grid(128, 16).unwrap();
        let config = MultiresConfig {
            leaf_grid: 4,
            metric: TileMetric::Sad,
        };
        let plain = hierarchical_rearrangement(&prepared, &target, layout, config).unwrap();
        let polished = hierarchical_with_polish(&prepared, &target, layout, config).unwrap();
        assert!(polished.total <= plain.total);
        let matrix = build_error_matrix(&prepared, &target, layout, TileMetric::Sad).unwrap();
        assert!(crate::local_search::is_swap_optimal(
            &matrix,
            &polished.assignment
        ));
        // Close to the true optimum after polish.
        let opt = optimal_rearrangement(&matrix, SolverKind::JonkerVolgenant).total;
        assert!(
            (polished.total as f64) < opt as f64 * 1.05,
            "polished {} vs opt {opt}",
            polished.total
        );
    }

    #[test]
    fn generate_hierarchical_end_to_end() {
        let (input, target) = pair(128);
        let (image, outcome) = generate_hierarchical(
            &input,
            &target,
            32,
            MultiresConfig {
                leaf_grid: 8,
                metric: TileMetric::Sad,
            },
        )
        .unwrap();
        assert_eq!(image.dimensions(), (128, 128));
        assert_eq!(metrics::sad(&image, &target), outcome.total);
        // Better than the unrearranged (histogram-matched) input.
        let prepared = mosaic_image::histogram::match_histogram(&input, &target);
        assert!(outcome.total <= metrics::sad(&prepared, &target));
    }
}
