//! Pipeline configuration.

use crate::json::Json;
use mosaic_assign::SolverKind;
use mosaic_grid::TileMetric;

/// Which Step-3 rearrangement algorithm to run.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum Algorithm {
    /// §III — exact minimum-weight bipartite matching with the given
    /// solver.
    Optimal(SolverKind),
    /// §IV-A, Algorithm 1 — serial pairwise-swap local search.
    LocalSearch,
    /// §IV-B, Algorithm 2 — edge-colored parallel local search.
    #[default]
    ParallelSearch,
    /// Greedy matching baseline (not in the paper; quality floor).
    Greedy,
    /// Candidate-pruned matching: each input tile keeps only its `k` best
    /// target positions and the sparse auction solves the pruned graph
    /// (extension; the scalability strategy of practical mosaic engines).
    SparseMatch {
        /// Candidates kept per input tile.
        k: usize,
    },
    /// Simulated-annealing variant of the local search (DESIGN.md §7
    /// extension), with the given seed and sweep budget.
    Anneal {
        /// PRNG seed.
        seed: u64,
        /// Number of annealing sweeps over S(S−1)/2 proposals.
        sweeps: usize,
    },
}

impl Algorithm {
    /// Stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Optimal(_) => "optimal",
            Algorithm::LocalSearch => "local-search",
            Algorithm::ParallelSearch => "parallel-search",
            Algorithm::Greedy => "greedy",
            Algorithm::SparseMatch { .. } => "sparse-match",
            Algorithm::Anneal { .. } => "anneal",
        }
    }
}

/// Execution backend for the parallelizable steps (error matrix, parallel
/// local search).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Single-threaded reference execution (the paper's CPU baseline).
    Serial,
    /// Crossbeam worker threads (multi-core CPU).
    Threads(usize),
    /// The simulated CUDA device (`mosaic-gpu`), with this many host
    /// workers standing in for streaming multiprocessors.
    GpuSim {
        /// Host worker threads driving the simulated device; `None` uses
        /// all available cores.
        workers: Option<usize>,
    },
}

impl Default for Backend {
    fn default() -> Self {
        Backend::GpuSim { workers: None }
    }
}

impl Backend {
    /// Stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Serial => "serial",
            Backend::Threads(_) => "threads",
            Backend::GpuSim { .. } => "gpu-sim",
        }
    }
}

/// §II pre-processing of the input image.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum Preprocess {
    /// Remap the input's intensity distribution onto the target's
    /// (histogram specification — the paper's default, applied to every
    /// experiment).
    #[default]
    MatchTarget,
    /// Classical histogram equalization of the input only.
    Equalize,
    /// Use the input image unchanged (for the preprocessing ablation).
    None,
}

impl Preprocess {
    /// Stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Preprocess::MatchTarget => "match-target",
            Preprocess::Equalize => "equalize",
            Preprocess::None => "none",
        }
    }
}

/// Full pipeline configuration. Build with [`MosaicBuilder`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MosaicConfig {
    /// Tiles per image side (the paper's "divided into g × g tiles").
    pub grid: usize,
    /// Tile distance function for Step 2.
    pub metric: TileMetric,
    /// Step-3 algorithm.
    pub algorithm: Algorithm,
    /// Execution backend for Steps 2 and 3.
    pub backend: Backend,
    /// §II input pre-processing.
    pub preprocess: Preprocess,
}

impl Default for MosaicConfig {
    fn default() -> Self {
        MosaicConfig {
            grid: 32,
            metric: TileMetric::Sad,
            algorithm: Algorithm::default(),
            backend: Backend::default(),
            preprocess: Preprocess::default(),
        }
    }
}

impl MosaicConfig {
    /// Serialize to the stable JSON shape shared by the report output and
    /// the `mosaic-service` wire protocol.
    ///
    /// Enum variants are encoded by their stable [`name`](Algorithm::name)
    /// strings; variant payloads (solver, `k`, seed, sweeps, thread and
    /// worker counts) ride along as extra keys. The 64-bit anneal seed is
    /// encoded as a decimal string so it survives the JSON `f64` number
    /// model exactly.
    pub fn to_json(&self) -> Json {
        let mut algorithm = vec![("name".to_string(), Json::from(self.algorithm.name()))];
        match self.algorithm {
            Algorithm::Optimal(solver) => {
                algorithm.push(("solver".to_string(), Json::from(solver.name())));
            }
            Algorithm::SparseMatch { k } => algorithm.push(("k".to_string(), Json::from(k))),
            Algorithm::Anneal { seed, sweeps } => {
                algorithm.push(("seed".to_string(), Json::Str(seed.to_string())));
                algorithm.push(("sweeps".to_string(), Json::from(sweeps)));
            }
            Algorithm::LocalSearch | Algorithm::ParallelSearch | Algorithm::Greedy => {}
        }
        let mut backend = vec![("name".to_string(), Json::from(self.backend.name()))];
        match self.backend {
            Backend::Serial => {}
            Backend::Threads(t) => backend.push(("threads".to_string(), Json::from(t))),
            Backend::GpuSim { workers } => backend.push((
                "workers".to_string(),
                workers.map_or(Json::Null, Json::from),
            )),
        }
        Json::obj([
            ("grid", Json::from(self.grid)),
            ("metric", Json::from(self.metric.name())),
            ("algorithm", Json::Obj(algorithm)),
            ("backend", Json::Obj(backend)),
            ("preprocess", Json::from(self.preprocess.name())),
        ])
    }

    /// Parse the shape produced by [`to_json`](Self::to_json). Missing
    /// keys fall back to the defaults, so clients may send partial
    /// configurations.
    ///
    /// # Errors
    /// Returns a description of the first unrecognized name or malformed
    /// field.
    pub fn from_json(value: &Json) -> Result<MosaicConfig, String> {
        let mut config = MosaicConfig::default();
        if let Some(grid) = value.get("grid") {
            config.grid = grid
                .as_u64()
                .ok_or_else(|| "grid must be a non-negative integer".to_string())?
                as usize;
        }
        if let Some(metric) = value.get("metric") {
            let name = metric.as_str().ok_or("metric must be a string")?;
            config.metric = TileMetric::ALL
                .into_iter()
                .find(|m| m.name() == name)
                .ok_or_else(|| format!("unknown metric {name:?}"))?;
        }
        if let Some(preprocess) = value.get("preprocess") {
            let name = preprocess.as_str().ok_or("preprocess must be a string")?;
            config.preprocess = [
                Preprocess::MatchTarget,
                Preprocess::Equalize,
                Preprocess::None,
            ]
            .into_iter()
            .find(|p| p.name() == name)
            .ok_or_else(|| format!("unknown preprocess {name:?}"))?;
        }
        if let Some(algorithm) = value.get("algorithm") {
            config.algorithm = algorithm_from_json(algorithm)?;
        }
        if let Some(backend) = value.get("backend") {
            config.backend = backend_from_json(backend)?;
        }
        Ok(config)
    }
}

fn algorithm_from_json(value: &Json) -> Result<Algorithm, String> {
    let name = value
        .get("name")
        .and_then(Json::as_str)
        .ok_or("algorithm needs a \"name\" string")?;
    match name {
        "optimal" => {
            let solver = match value.get("solver").and_then(Json::as_str) {
                None => SolverKind::default(),
                Some(solver_name) => SolverKind::ALL
                    .into_iter()
                    .find(|s| s.name() == solver_name)
                    .ok_or_else(|| format!("unknown solver {solver_name:?}"))?,
            };
            Ok(Algorithm::Optimal(solver))
        }
        "local-search" => Ok(Algorithm::LocalSearch),
        "parallel-search" => Ok(Algorithm::ParallelSearch),
        "greedy" => Ok(Algorithm::Greedy),
        "sparse-match" => {
            let k = value
                .get("k")
                .and_then(Json::as_u64)
                .ok_or("sparse-match needs an integer \"k\"")? as usize;
            Ok(Algorithm::SparseMatch { k })
        }
        "anneal" => {
            let seed = match value.get("seed") {
                None => 0,
                Some(Json::Str(s)) => s
                    .parse::<u64>()
                    .map_err(|_| format!("invalid anneal seed {s:?}"))?,
                Some(other) => other.as_u64().ok_or("invalid anneal seed")?,
            };
            let sweeps = value.get("sweeps").and_then(Json::as_u64).unwrap_or(1) as usize;
            Ok(Algorithm::Anneal { seed, sweeps })
        }
        other => Err(format!("unknown algorithm {other:?}")),
    }
}

fn backend_from_json(value: &Json) -> Result<Backend, String> {
    let name = value
        .get("name")
        .and_then(Json::as_str)
        .ok_or("backend needs a \"name\" string")?;
    match name {
        "serial" => Ok(Backend::Serial),
        "threads" => {
            let threads = value
                .get("threads")
                .and_then(Json::as_u64)
                .ok_or("threads backend needs an integer \"threads\"")?
                as usize;
            Ok(Backend::Threads(threads))
        }
        "gpu-sim" => {
            let workers = match value.get("workers") {
                None | Some(Json::Null) => None,
                Some(w) => Some(w.as_u64().ok_or("workers must be an integer or null")? as usize),
            };
            Ok(Backend::GpuSim { workers })
        }
        other => Err(format!("unknown backend {other:?}")),
    }
}

/// Fluent builder for [`MosaicConfig`].
#[derive(Clone, Debug, Default)]
pub struct MosaicBuilder {
    config: MosaicConfig,
}

impl MosaicBuilder {
    /// Start from the defaults (32×32 grid, SAD, parallel search on the
    /// simulated device, histogram matching on).
    pub fn new() -> Self {
        Self::default()
    }

    /// Tiles per side; the paper evaluates 16, 32 and 64.
    pub fn grid(mut self, tiles_per_side: usize) -> Self {
        self.config.grid = tiles_per_side;
        self
    }

    /// Tile error metric.
    pub fn metric(mut self, metric: TileMetric) -> Self {
        self.config.metric = metric;
        self
    }

    /// Step-3 algorithm.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.config.algorithm = algorithm;
        self
    }

    /// Execution backend.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.config.backend = backend;
        self
    }

    /// Pre-processing mode.
    pub fn preprocess(mut self, preprocess: Preprocess) -> Self {
        self.config.preprocess = preprocess;
        self
    }

    /// Finish.
    pub fn build(self) -> MosaicConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_defaults() {
        let c = MosaicConfig::default();
        assert_eq!(c.grid, 32);
        assert_eq!(c.metric, TileMetric::Sad);
        assert_eq!(c.preprocess, Preprocess::MatchTarget);
        assert_eq!(c.algorithm, Algorithm::ParallelSearch);
    }

    #[test]
    fn builder_sets_every_field() {
        let c = MosaicBuilder::new()
            .grid(64)
            .metric(TileMetric::Ssd)
            .algorithm(Algorithm::Optimal(SolverKind::JonkerVolgenant))
            .backend(Backend::Threads(4))
            .preprocess(Preprocess::None)
            .build();
        assert_eq!(c.grid, 64);
        assert_eq!(c.metric, TileMetric::Ssd);
        assert_eq!(c.algorithm, Algorithm::Optimal(SolverKind::JonkerVolgenant));
        assert_eq!(c.backend, Backend::Threads(4));
        assert_eq!(c.preprocess, Preprocess::None);
    }

    #[test]
    fn json_roundtrips_every_variant() {
        let configs = [
            MosaicConfig::default(),
            MosaicBuilder::new()
                .grid(16)
                .metric(TileMetric::MeanAbs)
                .algorithm(Algorithm::Optimal(SolverKind::Blossom))
                .backend(Backend::Serial)
                .preprocess(Preprocess::Equalize)
                .build(),
            MosaicBuilder::new()
                .algorithm(Algorithm::SparseMatch { k: 9 })
                .backend(Backend::Threads(3))
                .build(),
            MosaicBuilder::new()
                .algorithm(Algorithm::Anneal {
                    seed: u64::MAX, // exceeds f64 precision; must survive
                    sweeps: 5,
                })
                .backend(Backend::GpuSim { workers: Some(2) })
                .preprocess(Preprocess::None)
                .build(),
            MosaicBuilder::new().algorithm(Algorithm::Greedy).build(),
            MosaicBuilder::new()
                .algorithm(Algorithm::LocalSearch)
                .build(),
        ];
        for config in configs {
            let json = config.to_json();
            let back = MosaicConfig::from_json(&json).unwrap();
            assert_eq!(back, config);
            // And through actual text.
            let reparsed = crate::json::Json::parse(&json.encode()).unwrap();
            assert_eq!(MosaicConfig::from_json(&reparsed).unwrap(), config);
        }
    }

    #[test]
    fn json_defaults_missing_fields() {
        let partial = crate::json::Json::parse(r#"{"grid":8}"#).unwrap();
        let config = MosaicConfig::from_json(&partial).unwrap();
        assert_eq!(config.grid, 8);
        assert_eq!(config.metric, TileMetric::Sad);
        assert_eq!(config.algorithm, Algorithm::ParallelSearch);
    }

    #[test]
    fn json_rejects_unknown_names() {
        for bad in [
            r#"{"metric":"nope"}"#,
            r#"{"algorithm":{"name":"nope"}}"#,
            r#"{"algorithm":{"name":"optimal","solver":"nope"}}"#,
            r#"{"backend":{"name":"nope"}}"#,
            r#"{"preprocess":"nope"}"#,
            r#"{"grid":-1}"#,
        ] {
            let v = crate::json::Json::parse(bad).unwrap();
            assert!(MosaicConfig::from_json(&v).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Algorithm::LocalSearch.name(), "local-search");
        assert_eq!(Algorithm::Anneal { seed: 0, sweeps: 1 }.name(), "anneal");
        assert_eq!(Backend::Serial.name(), "serial");
        assert_eq!(Backend::GpuSim { workers: None }.name(), "gpu-sim");
        assert_eq!(Preprocess::Equalize.name(), "equalize");
    }
}
