//! Pipeline configuration.

use mosaic_assign::SolverKind;
use mosaic_grid::TileMetric;

/// Which Step-3 rearrangement algorithm to run.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
#[derive(Default)]
pub enum Algorithm {
    /// §III — exact minimum-weight bipartite matching with the given
    /// solver.
    Optimal(SolverKind),
    /// §IV-A, Algorithm 1 — serial pairwise-swap local search.
    LocalSearch,
    /// §IV-B, Algorithm 2 — edge-colored parallel local search.
    #[default]
    ParallelSearch,
    /// Greedy matching baseline (not in the paper; quality floor).
    Greedy,
    /// Candidate-pruned matching: each input tile keeps only its `k` best
    /// target positions and the sparse auction solves the pruned graph
    /// (extension; the scalability strategy of practical mosaic engines).
    SparseMatch {
        /// Candidates kept per input tile.
        k: usize,
    },
    /// Simulated-annealing variant of the local search (DESIGN.md §7
    /// extension), with the given seed and sweep budget.
    Anneal {
        /// PRNG seed.
        seed: u64,
        /// Number of annealing sweeps over S(S−1)/2 proposals.
        sweeps: usize,
    },
}


impl Algorithm {
    /// Stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Optimal(_) => "optimal",
            Algorithm::LocalSearch => "local-search",
            Algorithm::ParallelSearch => "parallel-search",
            Algorithm::Greedy => "greedy",
            Algorithm::SparseMatch { .. } => "sparse-match",
            Algorithm::Anneal { .. } => "anneal",
        }
    }
}

/// Execution backend for the parallelizable steps (error matrix, parallel
/// local search).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Single-threaded reference execution (the paper's CPU baseline).
    Serial,
    /// Crossbeam worker threads (multi-core CPU).
    Threads(usize),
    /// The simulated CUDA device (`mosaic-gpu`), with this many host
    /// workers standing in for streaming multiprocessors.
    GpuSim {
        /// Host worker threads driving the simulated device; `None` uses
        /// all available cores.
        workers: Option<usize>,
    },
}

impl Default for Backend {
    fn default() -> Self {
        Backend::GpuSim { workers: None }
    }
}

impl Backend {
    /// Stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Serial => "serial",
            Backend::Threads(_) => "threads",
            Backend::GpuSim { .. } => "gpu-sim",
        }
    }
}

/// §II pre-processing of the input image.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum Preprocess {
    /// Remap the input's intensity distribution onto the target's
    /// (histogram specification — the paper's default, applied to every
    /// experiment).
    #[default]
    MatchTarget,
    /// Classical histogram equalization of the input only.
    Equalize,
    /// Use the input image unchanged (for the preprocessing ablation).
    None,
}

impl Preprocess {
    /// Stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Preprocess::MatchTarget => "match-target",
            Preprocess::Equalize => "equalize",
            Preprocess::None => "none",
        }
    }
}

/// Full pipeline configuration. Build with [`MosaicBuilder`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MosaicConfig {
    /// Tiles per image side (the paper's "divided into g × g tiles").
    pub grid: usize,
    /// Tile distance function for Step 2.
    pub metric: TileMetric,
    /// Step-3 algorithm.
    pub algorithm: Algorithm,
    /// Execution backend for Steps 2 and 3.
    pub backend: Backend,
    /// §II input pre-processing.
    pub preprocess: Preprocess,
}

impl Default for MosaicConfig {
    fn default() -> Self {
        MosaicConfig {
            grid: 32,
            metric: TileMetric::Sad,
            algorithm: Algorithm::default(),
            backend: Backend::default(),
            preprocess: Preprocess::default(),
        }
    }
}

/// Fluent builder for [`MosaicConfig`].
#[derive(Clone, Debug, Default)]
pub struct MosaicBuilder {
    config: MosaicConfig,
}

impl MosaicBuilder {
    /// Start from the defaults (32×32 grid, SAD, parallel search on the
    /// simulated device, histogram matching on).
    pub fn new() -> Self {
        Self::default()
    }

    /// Tiles per side; the paper evaluates 16, 32 and 64.
    pub fn grid(mut self, tiles_per_side: usize) -> Self {
        self.config.grid = tiles_per_side;
        self
    }

    /// Tile error metric.
    pub fn metric(mut self, metric: TileMetric) -> Self {
        self.config.metric = metric;
        self
    }

    /// Step-3 algorithm.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.config.algorithm = algorithm;
        self
    }

    /// Execution backend.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.config.backend = backend;
        self
    }

    /// Pre-processing mode.
    pub fn preprocess(mut self, preprocess: Preprocess) -> Self {
        self.config.preprocess = preprocess;
        self
    }

    /// Finish.
    pub fn build(self) -> MosaicConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_defaults() {
        let c = MosaicConfig::default();
        assert_eq!(c.grid, 32);
        assert_eq!(c.metric, TileMetric::Sad);
        assert_eq!(c.preprocess, Preprocess::MatchTarget);
        assert_eq!(c.algorithm, Algorithm::ParallelSearch);
    }

    #[test]
    fn builder_sets_every_field() {
        let c = MosaicBuilder::new()
            .grid(64)
            .metric(TileMetric::Ssd)
            .algorithm(Algorithm::Optimal(SolverKind::JonkerVolgenant))
            .backend(Backend::Threads(4))
            .preprocess(Preprocess::None)
            .build();
        assert_eq!(c.grid, 64);
        assert_eq!(c.metric, TileMetric::Ssd);
        assert_eq!(c.algorithm, Algorithm::Optimal(SolverKind::JonkerVolgenant));
        assert_eq!(c.backend, Backend::Threads(4));
        assert_eq!(c.preprocess, Preprocess::None);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Algorithm::LocalSearch.name(), "local-search");
        assert_eq!(
            Algorithm::Anneal { seed: 0, sweeps: 1 }.name(),
            "anneal"
        );
        assert_eq!(Backend::Serial.name(), "serial");
        assert_eq!(Backend::GpuSim { workers: None }.name(), "gpu-sim");
        assert_eq!(Preprocess::Equalize.name(), "equalize");
    }
}
