//! Generation reports: everything the experiment harness prints.

use crate::config::MosaicConfig;
use crate::json::Json;
use mosaic_gpu::{CostModel, DeviceSpec, WorkProfile};
use std::time::Duration;

fn profile_json(profile: &WorkProfile) -> Json {
    Json::obj([
        ("launches", Json::from(profile.launches)),
        ("global_bytes", Json::from(profile.global_bytes as f64)),
        ("ops", Json::from(profile.ops as f64)),
    ])
}

fn duration_ms(d: Duration) -> Json {
    Json::from(d.as_secs_f64() * 1000.0)
}

/// Timings, totals and work accounting of one mosaic generation.
#[derive(Clone, Debug)]
pub struct GenerationReport {
    /// Configuration used.
    pub config: MosaicConfig,
    /// Image edge `N`.
    pub image_size: usize,
    /// Tile count `S`.
    pub tile_count: usize,
    /// Tile edge `M`.
    pub tile_size: usize,
    /// Final total error (the paper's Eq. 2, Table I).
    pub total_error: u64,
    /// Local-search sweeps `k` (0 for the optimal algorithm).
    pub sweeps: usize,
    /// Swaps performed (0 for the optimal algorithm).
    pub swaps: usize,
    /// Wall time of Step 1 (tiling + preprocessing).
    pub step1_wall: Duration,
    /// Wall time of Step 2 (error matrix — Table II).
    pub step2_wall: Duration,
    /// Wall time of Step 3 (rearrangement — Table III).
    pub step3_wall: Duration,
    /// Abstract work profile of Step 2.
    pub step2_profile: WorkProfile,
    /// Abstract work profile of Step 3 (zeroed for the optimal algorithm,
    /// which runs on the host).
    pub step3_profile: WorkProfile,
}

impl GenerationReport {
    /// Total wall time (Table IV).
    pub fn total_wall(&self) -> Duration {
        self.step1_wall + self.step2_wall + self.step3_wall
    }

    /// Modeled execution time of the profiled steps on `device` (see
    /// `mosaic_gpu::model`).
    pub fn modeled_time(&self, device: &DeviceSpec) -> Duration {
        let model = CostModel::new(device.clone());
        model.estimate(&self.step2_profile.combine(&self.step3_profile))
    }

    /// Modeled K40-over-host speedup for the profiled steps.
    pub fn modeled_speedup(&self) -> f64 {
        let k40 = CostModel::new(DeviceSpec::tesla_k40());
        let host = CostModel::new(DeviceSpec::host_single_core());
        k40.speedup_over(&host, &self.step2_profile.combine(&self.step3_profile))
    }

    /// Serialize to the stable JSON shape shared by the bench harness
    /// output and the `mosaic-service` wire protocol. Durations are
    /// reported in fractional milliseconds (`*_wall_ms`).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("config", self.config.to_json()),
            ("image_size", Json::from(self.image_size)),
            ("tile_count", Json::from(self.tile_count)),
            ("tile_size", Json::from(self.tile_size)),
            ("total_error", Json::from(self.total_error as f64)),
            ("sweeps", Json::from(self.sweeps)),
            ("swaps", Json::from(self.swaps)),
            ("step1_wall_ms", duration_ms(self.step1_wall)),
            ("step2_wall_ms", duration_ms(self.step2_wall)),
            ("step3_wall_ms", duration_ms(self.step3_wall)),
            ("total_wall_ms", duration_ms(self.total_wall())),
            ("step2_profile", profile_json(&self.step2_profile)),
            ("step3_profile", profile_json(&self.step3_profile)),
        ])
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} [{}] N={} S={}x{}: error={} sweeps={} total={:.3}s (step2={:.3}s step3={:.3}s)",
            self.config.algorithm.name(),
            self.config.backend.name(),
            self.image_size,
            (self.tile_count as f64).sqrt() as usize,
            (self.tile_count as f64).sqrt() as usize,
            self.total_error,
            self.sweeps,
            self.total_wall().as_secs_f64(),
            self.step2_wall.as_secs_f64(),
            self.step3_wall.as_secs_f64(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MosaicBuilder;

    fn dummy_report() -> GenerationReport {
        GenerationReport {
            config: MosaicBuilder::new().grid(4).build(),
            image_size: 64,
            tile_count: 16,
            tile_size: 16,
            total_error: 1234,
            sweeps: 3,
            swaps: 17,
            step1_wall: Duration::from_millis(1),
            step2_wall: Duration::from_millis(2),
            step3_wall: Duration::from_millis(3),
            step2_profile: WorkProfile {
                launches: 1,
                global_bytes: 1_000_000,
                ops: 2_000_000,
            },
            step3_profile: WorkProfile {
                launches: 45,
                global_bytes: 500_000,
                ops: 100_000,
            },
        }
    }

    #[test]
    fn total_wall_sums_steps() {
        assert_eq!(dummy_report().total_wall(), Duration::from_millis(6));
    }

    #[test]
    fn summary_contains_key_fields() {
        let s = dummy_report().summary();
        assert!(s.contains("error=1234"));
        assert!(s.contains("N=64"));
        assert!(s.contains("S=4x4"));
        assert!(s.contains("sweeps=3"));
    }

    #[test]
    fn to_json_roundtrips_through_text() {
        let r = dummy_report();
        let text = r.to_json().encode();
        let v = Json::parse(&text).unwrap();
        assert_eq!(v.get("total_error").unwrap().as_u64(), Some(1234));
        assert_eq!(v.get("tile_count").unwrap().as_u64(), Some(16));
        assert_eq!(v.get("step2_wall_ms").unwrap().as_f64(), Some(2.0));
        assert_eq!(v.get("total_wall_ms").unwrap().as_f64(), Some(6.0));
        let cfg = v.get("config").unwrap();
        assert_eq!(
            crate::config::MosaicConfig::from_json(cfg).unwrap(),
            r.config
        );
        let p = v.get("step3_profile").unwrap();
        assert_eq!(p.get("launches").unwrap().as_u64(), Some(45));
    }

    #[test]
    fn modeled_speedup_is_finite_and_positive() {
        let r = dummy_report();
        let speedup = r.modeled_speedup();
        assert!(speedup.is_finite());
        assert!(speedup > 0.0);
        assert!(r.modeled_time(&DeviceSpec::tesla_k40()) > Duration::ZERO);
    }
}
