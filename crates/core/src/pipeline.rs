//! The end-to-end generation pipeline.
//!
//! [`generate`] runs the paper's three steps on a grayscale image pair:
//! preprocessing + tiling (Step 1), the error matrix (Step 2, on the
//! configured backend), rearrangement (Step 3, with the configured
//! algorithm) and final assembly of the rearranged image `R`.

use crate::anneal::anneal_search;
use crate::config::{Algorithm, Backend, MosaicConfig};
use crate::errors::{compute_error_matrix_bounded_in, StepTrace};
use crate::local_search::{local_search_bounded, SearchOutcome};
use crate::optimal::{optimal_rearrangement, sparse_rearrangement};
use crate::parallel_search::{
    parallel_search_gpu_bounded, parallel_search_reference_bounded,
    parallel_search_threads_bounded_in, step3_parallel_profile,
};
use crate::preprocess::preprocess_gray;
use crate::report::GenerationReport;
use mosaic_edgecolor::SwapSchedule;
use mosaic_gpu::{DeviceSpec, GpuSim, WorkProfile};
use mosaic_grid::{assemble, BuildError, Deadline, DeadlineExceeded, LayoutError, TileLayout};
use mosaic_image::GrayImage;
use mosaic_pool::ThreadPool;
use mosaic_telemetry as telemetry;
use std::sync::Arc;
use std::time::Instant;

/// Why a bounded generation run did not produce a mosaic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GenerateError {
    /// The images do not fit the configured layout (the unbounded
    /// entry points surface exactly this case).
    Layout(LayoutError),
    /// The caller's [`Deadline`] expired mid-pipeline.
    DeadlineExceeded(DeadlineExceeded),
}

impl From<LayoutError> for GenerateError {
    fn from(e: LayoutError) -> Self {
        GenerateError::Layout(e)
    }
}

impl From<DeadlineExceeded> for GenerateError {
    fn from(e: DeadlineExceeded) -> Self {
        GenerateError::DeadlineExceeded(e)
    }
}

impl From<BuildError> for GenerateError {
    fn from(e: BuildError) -> Self {
        match e {
            BuildError::Layout(e) => GenerateError::Layout(e),
            BuildError::DeadlineExceeded(e) => GenerateError::DeadlineExceeded(e),
        }
    }
}

impl std::fmt::Display for GenerateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenerateError::Layout(e) => write!(f, "layout error: {e:?}"),
            GenerateError::DeadlineExceeded(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for GenerateError {}

/// Unwrap a bounded-generation result produced under [`Deadline::NONE`].
fn never_exceeded<T>(result: Result<T, GenerateError>) -> Result<T, LayoutError> {
    match result {
        Ok(value) => Ok(value),
        Err(GenerateError::Layout(e)) => Err(e),
        // lint:allow(panic) callers pass Deadline::NONE, which never expires
        Err(GenerateError::DeadlineExceeded(_)) => unreachable!("unbounded deadline expired"),
    }
}

/// Rearranged image plus full accounting.
#[derive(Clone, Debug)]
pub struct MosaicResult {
    /// The rearranged image `R`.
    pub image: GrayImage,
    /// The assignment (`assignment[v] = u`).
    pub assignment: Vec<usize>,
    /// Timings and totals.
    pub report: GenerationReport,
}

/// Generate a photomosaic: rearrange `input`'s tiles to reproduce
/// `target`.
///
/// # Errors
/// Returns [`LayoutError`] when the images are not square, not equal in
/// size, or not divisible into `config.grid × config.grid` tiles.
pub fn generate(
    input: &GrayImage,
    target: &GrayImage,
    config: &MosaicConfig,
) -> Result<MosaicResult, LayoutError> {
    never_exceeded(generate_bounded(input, target, config, &Deadline::NONE))
}

/// [`generate`] with cooperative cancellation: `deadline` is polled at
/// sweep boundaries of the Step-3 searches and at row boundaries of the
/// threaded Step-2 build, so a pathological job stops within one sweep
/// (or one row per worker) of the deadline. Step 1 and the
/// non-interruptible Step-3 solvers (optimal/greedy/sparse/anneal) only
/// check the deadline before they start.
///
/// # Errors
/// Returns [`GenerateError::Layout`] for the geometry errors of
/// [`generate`] and [`GenerateError::DeadlineExceeded`] when the deadline
/// expires mid-run.
pub fn generate_bounded(
    input: &GrayImage,
    target: &GrayImage,
    config: &MosaicConfig,
    deadline: &Deadline,
) -> Result<MosaicResult, GenerateError> {
    generate_bounded_in(mosaic_pool::global(), input, target, config, deadline)
}

/// [`generate_bounded`] with the parallel stages dispatched on an explicit
/// [`ThreadPool`] instead of the process-wide one (the service hands every
/// job its per-server pool, sized by `--workers`).
///
/// # Errors
/// Same conditions as [`generate_bounded`].
pub fn generate_bounded_in(
    pool: &Arc<ThreadPool>,
    input: &GrayImage,
    target: &GrayImage,
    config: &MosaicConfig,
    deadline: &Deadline,
) -> Result<MosaicResult, GenerateError> {
    generate_impl(pool, input, target, config, None, deadline).map(|(result, _)| result)
}

/// Like [`generate`], but also return the Step-2 error matrix so callers
/// can cache and reuse it for identical inputs (see `mosaic-service`).
///
/// # Errors
/// Same conditions as [`generate`].
pub fn generate_returning_matrix(
    input: &GrayImage,
    target: &GrayImage,
    config: &MosaicConfig,
) -> Result<(MosaicResult, mosaic_grid::ErrorMatrix), LayoutError> {
    never_exceeded(generate_returning_matrix_bounded(
        input,
        target,
        config,
        &Deadline::NONE,
    ))
}

/// [`generate_returning_matrix`] with cooperative cancellation (see
/// [`generate_bounded`] for the polling granularity). On deadline expiry
/// no matrix is returned — a partially built matrix is never exposed.
///
/// # Errors
/// Same conditions as [`generate_bounded`].
pub fn generate_returning_matrix_bounded(
    input: &GrayImage,
    target: &GrayImage,
    config: &MosaicConfig,
    deadline: &Deadline,
) -> Result<(MosaicResult, mosaic_grid::ErrorMatrix), GenerateError> {
    generate_returning_matrix_bounded_in(mosaic_pool::global(), input, target, config, deadline)
}

/// [`generate_returning_matrix_bounded`] on an explicit [`ThreadPool`].
///
/// # Errors
/// Same conditions as [`generate_bounded`].
pub fn generate_returning_matrix_bounded_in(
    pool: &Arc<ThreadPool>,
    input: &GrayImage,
    target: &GrayImage,
    config: &MosaicConfig,
    deadline: &Deadline,
) -> Result<(MosaicResult, mosaic_grid::ErrorMatrix), GenerateError> {
    let (result, matrix) = generate_impl(pool, input, target, config, None, deadline)?;
    Ok((
        result,
        // lint:allow(panic) generate_impl returns Some(matrix) whenever its matrix argument is None
        matrix.expect("the matrix is always computed when none is supplied"),
    ))
}

/// Like [`generate`], but reuse a previously computed Step-2 error matrix
/// instead of recomputing it. Step 1 (preprocessing) still runs because
/// the prepared image is needed for assembly; the report's `step2_wall`
/// is zero and its `step2_profile` is empty since no Step-2 work was
/// performed.
///
/// The caller is responsible for supplying a matrix computed from the
/// *same* `(input, target, grid, preprocess, metric)` tuple — that is the
/// cache invariant `mosaic-service` maintains via `JobSpec::cache_key`.
///
/// # Panics
/// Panics if `matrix` is not `grid² × grid²` — a matrix of the right size
/// but wrong content cannot be detected, so a size mismatch is treated as
/// a caller bug rather than a recoverable error.
///
/// # Errors
/// Same conditions as [`generate`].
pub fn generate_with_matrix(
    input: &GrayImage,
    target: &GrayImage,
    config: &MosaicConfig,
    matrix: &mosaic_grid::ErrorMatrix,
) -> Result<MosaicResult, LayoutError> {
    never_exceeded(generate_with_matrix_bounded(
        input,
        target,
        config,
        matrix,
        &Deadline::NONE,
    ))
}

/// [`generate_with_matrix`] with cooperative cancellation (see
/// [`generate_bounded`] for the polling granularity).
///
/// # Panics
/// Same condition as [`generate_with_matrix`].
///
/// # Errors
/// Same conditions as [`generate_bounded`].
pub fn generate_with_matrix_bounded(
    input: &GrayImage,
    target: &GrayImage,
    config: &MosaicConfig,
    matrix: &mosaic_grid::ErrorMatrix,
    deadline: &Deadline,
) -> Result<MosaicResult, GenerateError> {
    generate_with_matrix_bounded_in(
        mosaic_pool::global(),
        input,
        target,
        config,
        matrix,
        deadline,
    )
}

/// [`generate_with_matrix_bounded`] on an explicit [`ThreadPool`].
///
/// # Panics
/// Same condition as [`generate_with_matrix`].
///
/// # Errors
/// Same conditions as [`generate_bounded`].
pub fn generate_with_matrix_bounded_in(
    pool: &Arc<ThreadPool>,
    input: &GrayImage,
    target: &GrayImage,
    config: &MosaicConfig,
    matrix: &mosaic_grid::ErrorMatrix,
    deadline: &Deadline,
) -> Result<MosaicResult, GenerateError> {
    generate_impl(pool, input, target, config, Some(matrix), deadline).map(|(result, _)| result)
}

fn generate_impl(
    pool: &Arc<ThreadPool>,
    input: &GrayImage,
    target: &GrayImage,
    config: &MosaicConfig,
    cached_matrix: Option<&mosaic_grid::ErrorMatrix>,
    deadline: &Deadline,
) -> Result<(MosaicResult, Option<mosaic_grid::ErrorMatrix>), GenerateError> {
    let (w, h) = target.dimensions();
    if w != h {
        return Err(GenerateError::Layout(LayoutError::NotSquare {
            width: w,
            height: h,
        }));
    }
    let layout = TileLayout::with_grid(w, config.grid)?;
    layout.check_image(input)?;
    layout.check_image(target)?;
    deadline.check()?;

    let _generate_span = telemetry::tracer().span("generate");

    // Step 1: preprocess + (implicit) tiling.
    let t1 = Instant::now();
    let prepared = {
        let _span = telemetry::tracer().span("step1");
        preprocess_gray(input, target, config.preprocess)
    };
    let step1_wall = t1.elapsed();

    // Step 2: the S x S error matrix (skipped when a cached one is
    // supplied).
    let step2_span = telemetry::tracer().span("step2");
    let mut computed = None;
    let (matrix, step2_trace): (&mosaic_grid::ErrorMatrix, StepTrace) = match cached_matrix {
        Some(m) => {
            assert_eq!(
                m.size(),
                layout.tile_count(),
                "cached error matrix is {}x{0} but the layout has {} tiles",
                m.size(),
                layout.tile_count(),
            );
            (m, StepTrace::default())
        }
        None => {
            let (m, trace) = compute_error_matrix_bounded_in(
                pool,
                &prepared,
                target,
                layout,
                config.metric,
                config.backend,
                deadline,
            )?;
            (computed.insert(m), trace)
        }
    };
    drop(step2_span);

    // Step 3: rearrangement.
    let t3 = Instant::now();
    let (outcome, step3_profile) = {
        let _span = telemetry::tracer().span("step3");
        run_step3(pool, matrix, config, deadline)?
    };
    let step3_wall = t3.elapsed();

    let metrics = telemetry::registry();
    metrics.counter("pipeline_runs_total").inc();
    metrics
        .histogram("pipeline_step1_us")
        .record_duration_us(step1_wall);
    metrics
        .histogram("pipeline_step2_us")
        .record_duration_us(step2_trace.wall);
    metrics
        .histogram("pipeline_step3_us")
        .record_duration_us(step3_wall);
    metrics
        .histogram("pipeline_sweeps")
        .record(outcome.sweeps as u64);
    metrics
        .gauge("pipeline_total_error")
        .set(i64::try_from(outcome.total).unwrap_or(i64::MAX));

    let image = assemble(&prepared, layout, &outcome.assignment)?;
    let report = GenerationReport {
        config: config.clone(),
        image_size: w,
        tile_count: layout.tile_count(),
        tile_size: layout.tile_size(),
        total_error: outcome.total,
        sweeps: outcome.sweeps,
        swaps: outcome.swaps,
        step1_wall,
        step2_wall: step2_trace.wall,
        step3_wall,
        step2_profile: step2_trace.profile,
        step3_profile,
    };
    Ok((
        MosaicResult {
            image,
            assignment: outcome.assignment,
            report,
        },
        computed,
    ))
}

fn run_step3(
    pool: &Arc<ThreadPool>,
    matrix: &mosaic_grid::ErrorMatrix,
    config: &MosaicConfig,
    deadline: &Deadline,
) -> Result<(SearchOutcome, WorkProfile), DeadlineExceeded> {
    let s = matrix.size();
    let out = match config.algorithm {
        Algorithm::Optimal(solver) => {
            // §V: "Regarding the optimization algorithm in Step 3, since it
            // is not easy to parallelize the algorithm, we sequentially
            // perform it on the CPU." No device profile. The solvers are
            // not interruptible, so the deadline is checked only on entry.
            deadline.check()?;
            (
                optimal_rearrangement(matrix, solver),
                WorkProfile::default(),
            )
        }
        Algorithm::Greedy => {
            deadline.check()?;
            (
                optimal_rearrangement(matrix, mosaic_assign::SolverKind::Greedy),
                WorkProfile::default(),
            )
        }
        Algorithm::SparseMatch { k } => {
            deadline.check()?;
            (sparse_rearrangement(matrix, k), WorkProfile::default())
        }
        Algorithm::LocalSearch => {
            let outcome = local_search_bounded(matrix, deadline)?;
            // Algorithm 1 is the sequential baseline; profile it as pure
            // host work (no launches).
            let profile = step3_parallel_profile(s, outcome.sweeps, 0);
            (outcome, profile)
        }
        Algorithm::ParallelSearch => {
            let schedule = SwapSchedule::for_tiles(s);
            let result = match config.backend {
                Backend::Serial => parallel_search_reference_bounded(matrix, &schedule, deadline)?,
                Backend::Threads(t) => {
                    parallel_search_threads_bounded_in(pool, matrix, &schedule, t.max(1), deadline)?
                }
                Backend::GpuSim { workers } => {
                    let lanes = workers.unwrap_or_else(|| pool.threads());
                    let sim = GpuSim::with_pool(DeviceSpec::tesla_k40(), Arc::clone(pool), lanes);
                    parallel_search_gpu_bounded(&sim, matrix, &schedule, deadline)?
                }
            };
            let profile = step3_parallel_profile(s, result.outcome.sweeps, result.launches);
            (result.outcome, profile)
        }
        Algorithm::Anneal { seed, sweeps } => {
            // The annealing post-pass runs a fixed sweep budget and is not
            // internally interruptible; check on entry only.
            deadline.check()?;
            let outcome = anneal_search(matrix, seed, sweeps);
            let profile = step3_parallel_profile(s, outcome.sweeps, 0);
            (outcome, profile)
        }
    };
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MosaicBuilder, Preprocess};
    use mosaic_assign::SolverKind;
    use mosaic_image::{metrics, synth};

    fn pair(n: usize) -> (GrayImage, GrayImage) {
        (synth::portrait(n, 1), synth::regatta(n, 2))
    }

    fn base_config(grid: usize) -> MosaicConfig {
        MosaicBuilder::new()
            .grid(grid)
            .backend(Backend::Serial)
            .build()
    }

    #[test]
    fn generates_with_every_algorithm() {
        let (input, target) = pair(64);
        for algorithm in [
            Algorithm::Optimal(SolverKind::JonkerVolgenant),
            Algorithm::LocalSearch,
            Algorithm::ParallelSearch,
            Algorithm::Greedy,
            Algorithm::Anneal { seed: 7, sweeps: 4 },
            Algorithm::SparseMatch { k: 12 },
        ] {
            let config = MosaicBuilder::new()
                .grid(8)
                .algorithm(algorithm)
                .backend(Backend::Serial)
                .build();
            let result = generate(&input, &target, &config).unwrap();
            assert_eq!(result.image.dimensions(), (64, 64));
            assert_eq!(result.assignment.len(), 64);
            assert_eq!(result.report.total_error, {
                // The reported total must equal the SAD between the
                // rearranged image and the target (Eq. 2 == assembled SAD).
                metrics::sad(&result.image, &target)
            });
        }
    }

    #[test]
    fn optimal_is_never_worse_than_approximations() {
        let (input, target) = pair(64);
        let run = |algorithm| {
            let config = MosaicBuilder::new()
                .grid(8)
                .algorithm(algorithm)
                .backend(Backend::Serial)
                .build();
            generate(&input, &target, &config)
                .unwrap()
                .report
                .total_error
        };
        let optimal = run(Algorithm::Optimal(SolverKind::Hungarian));
        let serial = run(Algorithm::LocalSearch);
        let parallel = run(Algorithm::ParallelSearch);
        let greedy = run(Algorithm::Greedy);
        assert!(optimal <= serial);
        assert!(optimal <= parallel);
        assert!(optimal <= greedy);
    }

    #[test]
    fn rearrangement_improves_over_not_rearranging() {
        let (input, target) = pair(64);
        let config = base_config(8);
        let result = generate(&input, &target, &config).unwrap();
        // Identity arrangement of the preprocessed input.
        let prepared = preprocess_gray(&input, &target, config.preprocess);
        let identity_error = metrics::sad(&prepared, &target);
        assert!(result.report.total_error <= identity_error);
    }

    #[test]
    fn backends_agree_end_to_end() {
        let (input, target) = pair(48);
        let mk = |backend| {
            MosaicBuilder::new()
                .grid(6)
                .algorithm(Algorithm::ParallelSearch)
                .backend(backend)
                .build()
        };
        let serial = generate(&input, &target, &mk(Backend::Serial)).unwrap();
        let threads = generate(&input, &target, &mk(Backend::Threads(3))).unwrap();
        let gpu = generate(&input, &target, &mk(Backend::GpuSim { workers: Some(2) })).unwrap();
        assert_eq!(serial.image, threads.image);
        assert_eq!(serial.image, gpu.image);
        assert_eq!(serial.report.total_error, gpu.report.total_error);
    }

    #[test]
    fn preprocess_modes_all_run() {
        let (input, target) = pair(32);
        for preprocess in [
            Preprocess::MatchTarget,
            Preprocess::Equalize,
            Preprocess::None,
        ] {
            let config = MosaicBuilder::new()
                .grid(4)
                .backend(Backend::Serial)
                .preprocess(preprocess)
                .build();
            let result = generate(&input, &target, &config).unwrap();
            assert_eq!(result.image.dimensions(), (32, 32));
        }
    }

    #[test]
    fn non_square_and_mismatched_inputs_are_errors() {
        let square = synth::gradient(32);
        let tall = mosaic_image::Image::from_fn(32, 64, |_, _| mosaic_image::Gray(0)).unwrap();
        let config = base_config(4);
        assert!(generate(&square, &tall, &config).is_err());
        assert!(generate(&tall, &square, &config).is_err());
        let bigger = synth::gradient(64);
        assert!(generate(&square, &bigger, &config).is_err());
        // Grid that does not divide the image.
        let config = base_config(5);
        assert!(generate(&square, &square, &config).is_err());
    }

    #[test]
    fn report_fields_are_consistent() {
        let (input, target) = pair(64);
        let config = base_config(8);
        let result = generate(&input, &target, &config).unwrap();
        let r = &result.report;
        assert_eq!(r.image_size, 64);
        assert_eq!(r.tile_count, 64);
        assert_eq!(r.tile_size, 8);
        assert!(r.sweeps >= 1);
        assert!(!r.summary().is_empty());
    }

    #[test]
    fn cached_matrix_reproduces_the_uncached_result() {
        let (input, target) = pair(64);
        for algorithm in [
            Algorithm::Optimal(SolverKind::JonkerVolgenant),
            Algorithm::ParallelSearch,
        ] {
            let config = MosaicBuilder::new()
                .grid(8)
                .algorithm(algorithm)
                .backend(Backend::Serial)
                .build();
            let (fresh, matrix) = generate_returning_matrix(&input, &target, &config).unwrap();
            let cached = generate_with_matrix(&input, &target, &config, &matrix).unwrap();
            assert_eq!(cached.image, fresh.image);
            assert_eq!(cached.assignment, fresh.assignment);
            assert_eq!(cached.report.total_error, fresh.report.total_error);
            // No Step-2 work is reported on the cached path.
            assert_eq!(cached.report.step2_profile.launches, 0);
            assert_eq!(cached.report.step2_profile.ops, 0);
        }
    }

    #[test]
    #[should_panic(expected = "cached error matrix")]
    fn wrong_sized_cached_matrix_panics() {
        let (input, target) = pair(64);
        let config = base_config(8);
        let small = mosaic_grid::ErrorMatrix::from_vec(4, vec![0; 16]);
        let _ = generate_with_matrix(&input, &target, &config, &small);
    }

    #[test]
    fn bounded_generate_with_live_deadline_matches_unbounded() {
        let (input, target) = pair(64);
        let config = MosaicBuilder::new()
            .grid(8)
            .algorithm(Algorithm::ParallelSearch)
            .backend(Backend::Threads(3))
            .build();
        let deadline = Deadline::after(std::time::Duration::from_secs(3600));
        let plain = generate(&input, &target, &config).unwrap();
        let bounded = generate_bounded(&input, &target, &config, &deadline).unwrap();
        assert_eq!(plain.image, bounded.image);
        assert_eq!(plain.assignment, bounded.assignment);
    }

    #[test]
    fn expired_deadline_cancels_every_algorithm() {
        let (input, target) = pair(64);
        let expired = Deadline::after(std::time::Duration::ZERO);
        for algorithm in [
            Algorithm::Optimal(SolverKind::JonkerVolgenant),
            Algorithm::LocalSearch,
            Algorithm::ParallelSearch,
            Algorithm::Greedy,
            Algorithm::Anneal { seed: 7, sweeps: 4 },
            Algorithm::SparseMatch { k: 12 },
        ] {
            let config = MosaicBuilder::new()
                .grid(8)
                .algorithm(algorithm)
                .backend(Backend::Serial)
                .build();
            let result = generate_bounded(&input, &target, &config, &expired);
            assert!(
                matches!(result, Err(GenerateError::DeadlineExceeded(_))),
                "algorithm {:?} ignored the deadline",
                config.algorithm
            );
        }
    }

    #[test]
    fn layout_errors_win_over_expired_deadlines() {
        // Geometry validation happens before any deadline check so callers
        // get the more actionable error.
        let square = synth::gradient(32);
        let bigger = synth::gradient(64);
        let expired = Deadline::after(std::time::Duration::ZERO);
        let config = base_config(4);
        let result = generate_bounded(&square, &bigger, &config, &expired);
        assert!(matches!(result, Err(GenerateError::Layout(_))));
    }

    #[test]
    fn bounded_returning_matrix_is_cancelled_without_a_matrix() {
        let (input, target) = pair(64);
        let config = base_config(8);
        let expired = Deadline::after(std::time::Duration::ZERO);
        let result = generate_returning_matrix_bounded(&input, &target, &config, &expired);
        assert!(matches!(result, Err(GenerateError::DeadlineExceeded(_))));
    }

    #[test]
    fn mosaic_preserves_input_tile_multiset() {
        let (input, target) = pair(32);
        let config = MosaicBuilder::new()
            .grid(4)
            .backend(Backend::Serial)
            .preprocess(Preprocess::None) // so tiles come from `input` itself
            .build();
        let result = generate(&input, &target, &config).unwrap();
        let mut a: Vec<u8> = input.pixels().iter().map(|p| p.0).collect();
        let mut b: Vec<u8> = result.image.pixels().iter().map(|p| p.0).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "rearrangement must only move pixels");
    }
}
