//! Orientation-augmented rearrangement (extension).
//!
//! The paper places tiles unrotated. The photomosaic literature it cites
//! (e.g. ref [18], grid vs. *arbitrary* placement) also considers
//! transformed placements; this module extends the rearrangement with the
//! dihedral group D₄: each input tile may be placed in any of the 8
//! flip/rotation orientations. The error matrix entry becomes
//! `min over allowed orientations of E(σ(I_u), T_v)`, the reduction to
//! assignment is unchanged, and assembly applies the recorded best
//! orientation per placement. Quality can only improve over the plain
//! method (the identity orientation is always available).

use crate::local_search::{local_search, SearchOutcome};
use crate::optimal::optimal_rearrangement;
use mosaic_assign::SolverKind;
use mosaic_grid::{ErrorMatrix, LayoutError, TileLayout, TileMetric};
use mosaic_image::ops;
use mosaic_image::{GrayImage, Image, Pixel};

/// An element of the dihedral group D₄ acting on square tiles.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Default)]
pub enum Orientation {
    /// Identity.
    #[default]
    R0,
    /// 90° clockwise.
    R90,
    /// 180°.
    R180,
    /// 270° clockwise.
    R270,
    /// Horizontal mirror.
    FlipH,
    /// Vertical mirror.
    FlipV,
    /// Transpose (mirror across the main diagonal).
    Transpose,
    /// Anti-transpose (mirror across the anti-diagonal).
    AntiTranspose,
}

impl Orientation {
    /// All 8 orientations.
    pub const ALL: [Orientation; 8] = [
        Orientation::R0,
        Orientation::R90,
        Orientation::R180,
        Orientation::R270,
        Orientation::FlipH,
        Orientation::FlipV,
        Orientation::Transpose,
        Orientation::AntiTranspose,
    ];

    /// The four pure rotations.
    pub const ROTATIONS: [Orientation; 4] = [
        Orientation::R0,
        Orientation::R90,
        Orientation::R180,
        Orientation::R270,
    ];

    /// Apply to a square image.
    ///
    /// # Panics
    /// Panics when `img` is not square (rotations would change its shape).
    pub fn apply<P: Pixel>(self, img: &Image<P>) -> Image<P> {
        assert!(img.is_square(), "orientations act on square tiles");
        match self {
            Orientation::R0 => img.clone(),
            Orientation::R90 => ops::rotate90(img),
            Orientation::R180 => ops::rotate180(img),
            Orientation::R270 => ops::rotate270(img),
            Orientation::FlipH => ops::flip_horizontal(img),
            Orientation::FlipV => ops::flip_vertical(img),
            Orientation::Transpose => ops::transpose(img),
            Orientation::AntiTranspose => ops::rotate90(&ops::flip_horizontal(img)),
        }
    }

    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Orientation::R0 => "r0",
            Orientation::R90 => "r90",
            Orientation::R180 => "r180",
            Orientation::R270 => "r270",
            Orientation::FlipH => "flip-h",
            Orientation::FlipV => "flip-v",
            Orientation::Transpose => "transpose",
            Orientation::AntiTranspose => "anti-transpose",
        }
    }
}

/// Error matrix where each entry is minimized over `allowed` orientations,
/// plus the argmin orientation per (input tile, target position).
pub struct OrientedErrors {
    /// The minimized matrix, drop-in for the plain pipeline.
    pub matrix: ErrorMatrix,
    /// `best[u * S + v]` = orientation achieving the minimum.
    pub best: Vec<Orientation>,
}

/// Build the orientation-minimized Step-2 matrix.
///
/// # Errors
/// Returns [`LayoutError`] when the images do not match the layout.
///
/// # Panics
/// Panics when `allowed` is empty.
pub fn build_oriented_error_matrix(
    input: &GrayImage,
    target: &GrayImage,
    layout: TileLayout,
    metric: TileMetric,
    allowed: &[Orientation],
) -> Result<OrientedErrors, LayoutError> {
    assert!(!allowed.is_empty(), "at least one orientation is required");
    layout.check_image(input)?;
    layout.check_image(target)?;
    let s = layout.tile_count();
    // Same u32-entry overflow guard as the standard builders.
    let bound = metric.max_tile_error::<mosaic_image::Gray>(layout.pixels_per_tile());
    assert!(
        bound <= u64::from(u32::MAX),
        "metric {metric:?} with tile {0}x{0} overflows u32 entries",
        layout.tile_size(),
    );
    let mut matrix = ErrorMatrix::zeros(s);
    let mut best = vec![Orientation::R0; s * s];
    let target_tiles: Vec<GrayImage> = (0..s)
        .map(|v| layout.tile_view(target, v).to_image())
        .collect();
    for u in 0..s {
        let base = layout.tile_view(input, u).to_image();
        // Materialize each oriented variant once per input tile.
        let variants: Vec<(Orientation, GrayImage)> =
            allowed.iter().map(|&o| (o, o.apply(&base))).collect();
        for (v, tile_v) in target_tiles.iter().enumerate() {
            let mut best_err = u64::MAX;
            let mut best_o = allowed[0];
            for (o, variant) in &variants {
                let e = mosaic_grid::tile_error(&variant.full_view(), &tile_v.full_view(), metric);
                if e < best_err {
                    best_err = e;
                    best_o = *o;
                }
            }
            matrix.set(u, v, best_err as u32);
            best[u * s + v] = best_o;
        }
    }
    Ok(OrientedErrors { matrix, best })
}

/// Result of an orientation-augmented generation.
#[derive(Clone, Debug)]
pub struct OrientedMosaicResult {
    /// The assembled mosaic.
    pub image: GrayImage,
    /// `assignment[v] = u`.
    pub assignment: Vec<usize>,
    /// Orientation applied to the tile placed at each position.
    pub placed_orientations: Vec<Orientation>,
    /// Final total error.
    pub total_error: u64,
}

/// Step-3 strategy for the oriented pipeline.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum OrientedAlgorithm {
    /// Exact assignment on the minimized matrix.
    Optimal(SolverKind),
    /// Algorithm-1 local search on the minimized matrix.
    LocalSearch,
}

/// Generate a mosaic allowing the given tile orientations.
///
/// # Errors
/// Returns [`LayoutError`] for geometry mismatches.
pub fn generate_oriented(
    input: &GrayImage,
    target: &GrayImage,
    layout: TileLayout,
    metric: TileMetric,
    allowed: &[Orientation],
    algorithm: OrientedAlgorithm,
) -> Result<OrientedMosaicResult, LayoutError> {
    let oriented = build_oriented_error_matrix(input, target, layout, metric, allowed)?;
    let outcome: SearchOutcome = match algorithm {
        OrientedAlgorithm::Optimal(kind) => optimal_rearrangement(&oriented.matrix, kind),
        OrientedAlgorithm::LocalSearch => local_search(&oriented.matrix),
    };
    let s = layout.tile_count();
    let m = layout.tile_size();
    let mut image =
        // lint:allow(panic) a constructed TileLayout always has a positive image_size
        Image::black(layout.image_size(), layout.image_size()).expect("layout size is valid");
    let mut placed = Vec::with_capacity(s);
    for (v, &u) in outcome.assignment.iter().enumerate() {
        let orientation = oriented.best[u * s + v];
        placed.push(orientation);
        let tile = orientation.apply(&layout.tile_view(input, u).to_image());
        let (x, y) = layout.tile_origin(v);
        // lint:allow(panic) tile_origin places every m-sized tile inside the layout image
        ops::blit(&mut image, &tile, x, y).expect("tile fits by construction");
        debug_assert_eq!(tile.dimensions(), (m, m));
    }
    Ok(OrientedMosaicResult {
        image,
        assignment: outcome.assignment,
        placed_orientations: placed,
        total_error: outcome.total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_image::{metrics, synth, Gray};

    #[test]
    fn orientations_are_distinct_on_asymmetric_tiles() {
        let tile = Image::from_fn(4, 4, |x, y| Gray((y * 4 + x) as u8)).unwrap();
        let mut variants: Vec<Vec<Gray>> = Orientation::ALL
            .iter()
            .map(|o| o.apply(&tile).pixels().to_vec())
            .collect();
        variants.sort();
        variants.dedup();
        assert_eq!(
            variants.len(),
            8,
            "D4 orbit of an asymmetric tile has 8 elements"
        );
    }

    #[test]
    fn orientations_preserve_pixel_multiset() {
        let tile = synth::fur(8, 3);
        let mut base: Vec<Gray> = tile.pixels().to_vec();
        base.sort_unstable();
        for o in Orientation::ALL {
            let mut v: Vec<Gray> = o.apply(&tile).pixels().to_vec();
            v.sort_unstable();
            assert_eq!(v, base, "{o:?}");
        }
    }

    #[test]
    fn identity_only_matches_plain_matrix() {
        let input = synth::plasma(32, 1, 3);
        let target = synth::checker(32, 8, 2);
        let layout = TileLayout::new(32, 8).unwrap();
        let plain =
            mosaic_grid::build_error_matrix(&input, &target, layout, TileMetric::Sad).unwrap();
        let oriented = build_oriented_error_matrix(
            &input,
            &target,
            layout,
            TileMetric::Sad,
            &[Orientation::R0],
        )
        .unwrap();
        assert_eq!(oriented.matrix, plain);
        assert!(oriented.best.iter().all(|&o| o == Orientation::R0));
    }

    #[test]
    fn more_orientations_never_increase_entries() {
        let input = synth::drapery(32, 5);
        let target = synth::portrait(32, 6);
        let layout = TileLayout::new(32, 8).unwrap();
        let plain =
            mosaic_grid::build_error_matrix(&input, &target, layout, TileMetric::Sad).unwrap();
        let oriented = build_oriented_error_matrix(
            &input,
            &target,
            layout,
            TileMetric::Sad,
            &Orientation::ALL,
        )
        .unwrap();
        for u in 0..plain.size() {
            for v in 0..plain.size() {
                assert!(oriented.matrix.get(u, v) <= plain.get(u, v));
            }
        }
    }

    #[test]
    fn oriented_optimum_bounds_plain_optimum() {
        let input = synth::regatta(48, 2);
        let target = synth::fur(48, 3);
        let layout = TileLayout::new(48, 8).unwrap();
        let plain =
            mosaic_grid::build_error_matrix(&input, &target, layout, TileMetric::Sad).unwrap();
        let plain_total = optimal_rearrangement(&plain, SolverKind::JonkerVolgenant).total;
        let oriented = generate_oriented(
            &input,
            &target,
            layout,
            TileMetric::Sad,
            &Orientation::ALL,
            OrientedAlgorithm::Optimal(SolverKind::JonkerVolgenant),
        )
        .unwrap();
        assert!(oriented.total_error <= plain_total);
    }

    #[test]
    fn assembled_error_matches_reported_total() {
        let input = synth::portrait(32, 9);
        let target = synth::drapery(32, 4);
        let layout = TileLayout::new(32, 8).unwrap();
        let result = generate_oriented(
            &input,
            &target,
            layout,
            TileMetric::Sad,
            &Orientation::ALL,
            OrientedAlgorithm::LocalSearch,
        )
        .unwrap();
        assert_eq!(metrics::sad(&result.image, &target), result.total_error);
        assert_eq!(result.placed_orientations.len(), layout.tile_count());
    }

    #[test]
    fn rotations_subset_works() {
        let input = synth::checker(24, 6, 1);
        let target = synth::plasma(24, 2, 2);
        let layout = TileLayout::new(24, 8).unwrap();
        let result = generate_oriented(
            &input,
            &target,
            layout,
            TileMetric::Sad,
            &Orientation::ROTATIONS,
            OrientedAlgorithm::LocalSearch,
        )
        .unwrap();
        assert!(result
            .placed_orientations
            .iter()
            .all(|o| Orientation::ROTATIONS.contains(o)));
    }

    #[test]
    fn orientation_names_unique() {
        let mut names: Vec<_> = Orientation::ALL.iter().map(|o| o.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }

    #[test]
    #[should_panic(expected = "square tiles")]
    fn non_square_tile_rejected() {
        let img = Image::from_fn(4, 2, |_, _| Gray(0)).unwrap();
        let _ = Orientation::R90.apply(&img);
    }

    #[test]
    #[should_panic(expected = "at least one orientation")]
    fn empty_orientation_set_rejected() {
        let img = synth::gradient(16);
        let layout = TileLayout::new(16, 8).unwrap();
        let _ = build_oriented_error_matrix(&img, &img, layout, TileMetric::Sad, &[]);
    }
}
