//! Property-based tests for the tiling substrate, driven by the
//! deterministic [`mosaic_image::testutil`] PRNG (ported from the former
//! `proptest` suite; every case reproduces from the printed seed).

use mosaic_grid::{
    assemble, build_error_matrix, build_error_matrix_threaded, tile_error, ErrorMatrix, TileLayout,
    TileMetric,
};
use mosaic_image::testutil::{gray_image, XorShift};
use mosaic_image::{metrics, Gray, Image};

const SEEDS: u64 = 24;

/// A random square image whose size is `tiles * tile` for small factors.
fn arb_tiled_image(rng: &mut XorShift) -> (Image<Gray>, TileLayout) {
    let tiles = rng.range(1, 4);
    let tile = rng.range(2, 6);
    let n = tiles * tile;
    (gray_image(rng, n, n), TileLayout::new(n, tile).unwrap())
}

/// Two same-layout random images.
fn arb_image_pair(rng: &mut XorShift) -> (Image<Gray>, Image<Gray>, TileLayout) {
    let tiles = rng.range(1, 4);
    let tile = rng.range(2, 5);
    let n = tiles * tile;
    (
        gray_image(rng, n, n),
        gray_image(rng, n, n),
        TileLayout::new(n, tile).unwrap(),
    )
}

#[test]
fn tile_views_partition_the_image() {
    // Every pixel appears exactly once across tile views.
    for seed in 0..SEEDS {
        let mut rng = XorShift::new(seed);
        let (img, layout) = arb_tiled_image(&mut rng);
        let mut count = vec![0u32; img.pixels().len()];
        let n = layout.image_size();
        for i in 0..layout.tile_count() {
            let (x0, y0) = layout.tile_origin(i);
            for y in 0..layout.tile_size() {
                for x in 0..layout.tile_size() {
                    count[(y0 + y) * n + (x0 + x)] += 1;
                }
            }
        }
        assert!(count.iter().all(|&c| c == 1), "seed {seed}");
    }
}

#[test]
fn identity_assembly_is_identity() {
    for seed in 0..SEEDS {
        let mut rng = XorShift::new(seed);
        let (img, layout) = arb_tiled_image(&mut rng);
        let ident: Vec<usize> = (0..layout.tile_count()).collect();
        assert_eq!(assemble(&img, layout, &ident).unwrap(), img, "seed {seed}");
    }
}

#[test]
fn assembly_is_invertible() {
    // Applying a permutation then its inverse restores the image.
    for seed in 0..SEEDS {
        let mut rng = XorShift::new(seed);
        let (img, layout) = arb_tiled_image(&mut rng);
        let s = layout.tile_count();
        let perm = rng.permutation(s);
        let mut inverse = vec![0usize; s];
        for (v, &u) in perm.iter().enumerate() {
            inverse[u] = v;
        }
        let once = assemble(&img, layout, &perm).unwrap();
        let twice = assemble(&once, layout, &inverse).unwrap();
        assert_eq!(twice, img, "seed {seed}");
    }
}

#[test]
fn matrix_total_equals_assembled_sad() {
    for seed in 0..SEEDS {
        let mut rng = XorShift::new(seed);
        let (input, target, layout) = arb_image_pair(&mut rng);
        let m = build_error_matrix(&input, &target, layout, TileMetric::Sad).unwrap();
        let s = layout.tile_count();
        let assignment = rng.permutation(s);
        let rearranged = assemble(&input, layout, &assignment).unwrap();
        assert_eq!(
            metrics::sad(&rearranged, &target),
            m.assignment_total(&assignment),
            "seed {seed}"
        );
    }
}

#[test]
fn threaded_builder_matches_serial() {
    for seed in 0..SEEDS {
        let mut rng = XorShift::new(seed);
        let (input, target, layout) = arb_image_pair(&mut rng);
        let threads = rng.range(1, 7);
        for metric in TileMetric::ALL {
            let serial = build_error_matrix(&input, &target, layout, metric).unwrap();
            let par =
                build_error_matrix_threaded(&input, &target, layout, metric, threads).unwrap();
            assert_eq!(serial, par, "seed {seed} metric {metric:?}");
        }
    }
}

#[test]
fn swap_gain_consistent_with_totals() {
    for seed in 0..SEEDS {
        let mut rng = XorShift::new(seed);
        let s = rng.range(1, 8);
        let perm = rng.permutation(s);
        let data: Vec<u32> = (0..s * s).map(|_| rng.next_u32() % 10_000).collect();
        let m = ErrorMatrix::from_vec(s, data);
        for p in 0..s {
            for q in (p + 1)..s {
                let mut swapped = perm.clone();
                swapped.swap(p, q);
                let gain = m.swap_gain(&perm, p, q);
                assert_eq!(
                    gain,
                    m.assignment_total(&perm) as i64 - m.assignment_total(&swapped) as i64,
                    "seed {seed} pair ({p},{q})"
                );
            }
        }
    }
}

#[test]
fn sad_tile_error_bounded_by_metric_bound() {
    for seed in 0..SEEDS {
        let mut rng = XorShift::new(seed);
        let (input, target, layout) = arb_image_pair(&mut rng);
        let bound = TileMetric::Sad.max_tile_error::<Gray>(layout.pixels_per_tile());
        for u in 0..layout.tile_count() {
            for v in 0..layout.tile_count() {
                let e = tile_error(
                    &layout.tile_view(&input, u),
                    &layout.tile_view(&target, v),
                    TileMetric::Sad,
                );
                assert!(e <= bound, "seed {seed}");
            }
        }
    }
}
