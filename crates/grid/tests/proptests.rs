//! Property-based tests for the tiling substrate.

use mosaic_grid::{
    assemble, build_error_matrix, build_error_matrix_threaded, tile_error, ErrorMatrix,
    TileLayout, TileMetric,
};
use mosaic_image::{metrics, Gray, Image};
use proptest::prelude::*;

/// A random square image whose size is `tiles * tile` for small factors.
fn arb_tiled_image() -> impl Strategy<Value = (Image<Gray>, TileLayout)> {
    (1usize..=4, 2usize..=6).prop_flat_map(|(tiles, tile)| {
        let n = tiles * tile;
        proptest::collection::vec(any::<u8>(), n * n).prop_map(move |v| {
            let img = Image::from_vec(n, n, v.into_iter().map(Gray).collect()).unwrap();
            (img, TileLayout::new(n, tile).unwrap())
        })
    })
}

/// Two same-layout random images.
fn arb_image_pair() -> impl Strategy<Value = (Image<Gray>, Image<Gray>, TileLayout)> {
    (1usize..=4, 2usize..=5).prop_flat_map(|(tiles, tile)| {
        let n = tiles * tile;
        (
            proptest::collection::vec(any::<u8>(), n * n),
            proptest::collection::vec(any::<u8>(), n * n),
        )
            .prop_map(move |(a, b)| {
                let ia = Image::from_vec(n, n, a.into_iter().map(Gray).collect()).unwrap();
                let ib = Image::from_vec(n, n, b.into_iter().map(Gray).collect()).unwrap();
                (ia, ib, TileLayout::new(n, tile).unwrap())
            })
    })
}

fn arb_permutation(max_s: usize) -> impl Strategy<Value = Vec<usize>> {
    (1..=max_s).prop_flat_map(|s| Just((0..s).collect::<Vec<_>>()).prop_shuffle())
}

proptest! {
    #[test]
    fn tile_views_partition_the_image((img, layout) in arb_tiled_image()) {
        // Every pixel appears exactly once across tile views.
        let mut count = vec![0u32; img.pixels().len()];
        let n = layout.image_size();
        for i in 0..layout.tile_count() {
            let (x0, y0) = layout.tile_origin(i);
            for y in 0..layout.tile_size() {
                for x in 0..layout.tile_size() {
                    count[(y0 + y) * n + (x0 + x)] += 1;
                }
            }
        }
        prop_assert!(count.iter().all(|&c| c == 1));
    }

    #[test]
    fn identity_assembly_is_identity((img, layout) in arb_tiled_image()) {
        let ident: Vec<usize> = (0..layout.tile_count()).collect();
        prop_assert_eq!(assemble(&img, layout, &ident).unwrap(), img);
    }

    #[test]
    fn assembly_is_invertible((img, layout) in arb_tiled_image()) {
        // Applying a permutation then its inverse restores the image.
        let s = layout.tile_count();
        let perm: Vec<usize> = (0..s).rev().collect();
        let mut inverse = vec![0usize; s];
        for (v, &u) in perm.iter().enumerate() {
            inverse[u] = v;
        }
        let once = assemble(&img, layout, &perm).unwrap();
        let twice = assemble(&once, layout, &inverse).unwrap();
        prop_assert_eq!(twice, img);
    }

    #[test]
    fn matrix_total_equals_assembled_sad((input, target, layout) in arb_image_pair()) {
        let m = build_error_matrix(&input, &target, layout, TileMetric::Sad).unwrap();
        let s = layout.tile_count();
        let assignment: Vec<usize> = (0..s).rev().collect();
        let rearranged = assemble(&input, layout, &assignment).unwrap();
        prop_assert_eq!(
            metrics::sad(&rearranged, &target),
            m.assignment_total(&assignment)
        );
    }

    #[test]
    fn threaded_builder_matches_serial((input, target, layout) in arb_image_pair(), threads in 1usize..8) {
        for metric in TileMetric::ALL {
            let serial = build_error_matrix(&input, &target, layout, metric).unwrap();
            let par = build_error_matrix_threaded(&input, &target, layout, metric, threads).unwrap();
            prop_assert_eq!(serial, par);
        }
    }

    #[test]
    fn swap_gain_consistent_with_totals(perm in arb_permutation(8), seed in any::<u64>()) {
        let s = perm.len();
        // Deterministic pseudo-random matrix from the seed.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 10_000) as u32
        };
        let data: Vec<u32> = (0..s * s).map(|_| next()).collect();
        let m = ErrorMatrix::from_vec(s, data);
        for p in 0..s {
            for q in (p + 1)..s {
                let mut swapped = perm.clone();
                swapped.swap(p, q);
                let gain = m.swap_gain(&perm, p, q);
                prop_assert_eq!(
                    gain,
                    m.assignment_total(&perm) as i64 - m.assignment_total(&swapped) as i64
                );
            }
        }
    }

    #[test]
    fn sad_tile_error_bounded_by_metric_bound((input, target, layout) in arb_image_pair()) {
        let bound = TileMetric::Sad.max_tile_error::<Gray>(layout.pixels_per_tile());
        for u in 0..layout.tile_count() {
            for v in 0..layout.tile_count() {
                let e = tile_error(
                    &layout.tile_view(&input, u),
                    &layout.tile_view(&target, v),
                    TileMetric::Sad,
                );
                prop_assert!(e <= bound);
            }
        }
    }
}
