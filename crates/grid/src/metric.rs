//! Per-tile error metrics.
//!
//! The paper's Eq. (1) is the sum of absolute per-pixel differences (SAD).
//! Two alternatives are provided for the metric-ablation bench: sum of
//! squared differences (SSD) and a cheap mean-intensity distance that
//! compares only tile averages (the common shortcut in database-driven
//! photomosaic tools the paper cites).

use mosaic_image::kernel::{self, Kernels};
use mosaic_image::{ImageView, Pixel};

/// Which tile-distance function to use for `E(I_u, T_v)`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Default)]
pub enum TileMetric {
    /// Sum of absolute differences — the paper's Eq. (1).
    #[default]
    Sad,
    /// Sum of squared differences; punishes outliers harder.
    Ssd,
    /// `M² × |mean(A) − mean(B)|`, channel-summed: compares only average
    /// intensity, scaled by the pixel count so magnitudes are comparable
    /// with SAD.
    MeanAbs,
}

impl TileMetric {
    /// All metrics, for ablation sweeps.
    pub const ALL: [TileMetric; 3] = [TileMetric::Sad, TileMetric::Ssd, TileMetric::MeanAbs];

    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            TileMetric::Sad => "sad",
            TileMetric::Ssd => "ssd",
            TileMetric::MeanAbs => "mean-abs",
        }
    }

    /// Upper bound of a single tile error under this metric, for a tile of
    /// `pixels` pixels of type `P`. Used to prove `u32` does not overflow.
    pub fn max_tile_error<P: Pixel>(self, pixels: usize) -> u64 {
        match self {
            TileMetric::Sad | TileMetric::MeanAbs => pixels as u64 * u64::from(P::MAX_ABS_DIFF),
            TileMetric::Ssd => {
                // Worst case per channel is 255², CHANNELS channels.
                pixels as u64 * 255 * 255 * P::CHANNELS as u64
            }
        }
    }
}

/// Compute the error between two equally-sized tile views.
///
/// SAD and SSD dispatch through the process-wide SIMD kernel table
/// ([`mosaic_image::kernel::active`]); `MeanAbs` compares averages and
/// stays scalar (it is not a per-byte-decomposable sum). Returns `u64`;
/// the matrix layer narrows to `u32` after checking the metric's bound
/// for the layout in use.
///
/// # Panics
/// Panics when the views' dimensions differ.
pub fn tile_error<P: Pixel>(a: &ImageView<'_, P>, b: &ImageView<'_, P>, metric: TileMetric) -> u64 {
    tile_error_with(kernel::active(), a, b, metric)
}

/// [`tile_error`] forced onto the scalar oracle kernels, regardless of
/// what the host dispatches to. Differential tests compare this against
/// the dispatched path to prove the SIMD tables are bit-identical.
///
/// # Panics
/// Panics when the views' dimensions differ.
pub fn tile_error_scalar<P: Pixel>(
    a: &ImageView<'_, P>,
    b: &ImageView<'_, P>,
    metric: TileMetric,
) -> u64 {
    tile_error_with(Kernels::scalar(), a, b, metric)
}

/// [`tile_error`] against an explicit kernel table.
///
/// # Panics
/// Panics when the views' dimensions differ.
pub fn tile_error_with<P: Pixel>(
    k: &Kernels,
    a: &ImageView<'_, P>,
    b: &ImageView<'_, P>,
    metric: TileMetric,
) -> u64 {
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "tile views must have equal dimensions"
    );
    match metric {
        TileMetric::Sad => sad(k, a, b),
        TileMetric::Ssd => ssd(k, a, b),
        TileMetric::MeanAbs => mean_abs(a, b),
    }
}

fn sad<P: Pixel>(k: &Kernels, a: &ImageView<'_, P>, b: &ImageView<'_, P>) -> u64 {
    let mut total = 0u64;
    for y in 0..a.height() {
        total += k.sad(P::row_bytes(a.row(y)), P::row_bytes(b.row(y)));
    }
    total
}

fn ssd<P: Pixel>(k: &Kernels, a: &ImageView<'_, P>, b: &ImageView<'_, P>) -> u64 {
    let mut total = 0u64;
    for y in 0..a.height() {
        total += k.ssd(P::row_bytes(a.row(y)), P::row_bytes(b.row(y)));
    }
    total
}

fn mean_abs<P: Pixel>(a: &ImageView<'_, P>, b: &ImageView<'_, P>) -> u64 {
    let mut sum_a = 0u64;
    let mut sum_b = 0u64;
    for y in 0..a.height() {
        for (pa, pb) in a.row(y).iter().zip(b.row(y)) {
            sum_a += pa.channels().iter().map(|&c| u64::from(c)).sum::<u64>();
            sum_b += pb.channels().iter().map(|&c| u64::from(c)).sum::<u64>();
        }
    }
    // |mean_a - mean_b| * pixels == |sum_a - sum_b|, already scaled.
    sum_a.abs_diff(sum_b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_image::{Gray, Image, Rgb};

    fn img(values: &[u8], w: usize, h: usize) -> Image<Gray> {
        Image::from_vec(w, h, values.iter().map(|&v| Gray(v)).collect()).unwrap()
    }

    #[test]
    fn sad_matches_hand_computation() {
        let a = img(&[0, 10, 20, 30], 2, 2);
        let b = img(&[5, 5, 25, 15], 2, 2);
        let e = tile_error(&a.full_view(), &b.full_view(), TileMetric::Sad);
        assert_eq!(e, 5 + 5 + 5 + 15);
    }

    #[test]
    fn ssd_matches_hand_computation() {
        let a = img(&[0, 10], 2, 1);
        let b = img(&[3, 6], 2, 1);
        let e = tile_error(&a.full_view(), &b.full_view(), TileMetric::Ssd);
        assert_eq!(e, 9 + 16);
    }

    #[test]
    fn mean_abs_compares_only_averages() {
        // Same mean, different texture → zero under MeanAbs, nonzero SAD.
        let a = img(&[0, 100], 2, 1);
        let b = img(&[100, 0], 2, 1);
        assert_eq!(
            tile_error(&a.full_view(), &b.full_view(), TileMetric::MeanAbs),
            0
        );
        assert_eq!(
            tile_error(&a.full_view(), &b.full_view(), TileMetric::Sad),
            200
        );
    }

    #[test]
    fn mean_abs_scaling_matches_sad_for_constant_tiles() {
        // For constant tiles SAD == MeanAbs.
        let a = Image::from_fn(4, 4, |_, _| Gray(10)).unwrap();
        let b = Image::from_fn(4, 4, |_, _| Gray(200)).unwrap();
        let sad = tile_error(&a.full_view(), &b.full_view(), TileMetric::Sad);
        let mean = tile_error(&a.full_view(), &b.full_view(), TileMetric::MeanAbs);
        assert_eq!(sad, mean);
        assert_eq!(sad, 16 * 190);
    }

    #[test]
    fn all_metrics_zero_on_identical_views() {
        let a = mosaic_image::synth::plasma(16, 3, 2);
        for m in TileMetric::ALL {
            assert_eq!(tile_error(&a.full_view(), &a.full_view(), m), 0);
        }
    }

    #[test]
    fn all_metrics_symmetric() {
        let a = mosaic_image::synth::plasma(8, 3, 2);
        let b = mosaic_image::synth::checker(8, 2, 4);
        for m in TileMetric::ALL {
            assert_eq!(
                tile_error(&a.full_view(), &b.full_view(), m),
                tile_error(&b.full_view(), &a.full_view(), m)
            );
        }
    }

    #[test]
    fn rgb_metrics_sum_channels() {
        let a = Image::from_vec(1, 1, vec![Rgb::new(0, 0, 0)]).unwrap();
        let b = Image::from_vec(1, 1, vec![Rgb::new(1, 2, 3)]).unwrap();
        assert_eq!(
            tile_error(&a.full_view(), &b.full_view(), TileMetric::Sad),
            6
        );
        assert_eq!(
            tile_error(&a.full_view(), &b.full_view(), TileMetric::Ssd),
            1 + 4 + 9
        );
        assert_eq!(
            tile_error(&a.full_view(), &b.full_view(), TileMetric::MeanAbs),
            6
        );
    }

    #[test]
    fn max_tile_error_bounds_are_respected() {
        // Extreme tiles: black vs white.
        let black = Image::from_fn(8, 8, |_, _| Gray(0)).unwrap();
        let white = Image::from_fn(8, 8, |_, _| Gray(255)).unwrap();
        for m in TileMetric::ALL {
            let e = tile_error(&black.full_view(), &white.full_view(), m);
            assert!(e <= m.max_tile_error::<Gray>(64), "{m:?}: {e}");
        }
        // And the SAD bound is tight.
        assert_eq!(
            tile_error(&black.full_view(), &white.full_view(), TileMetric::Sad),
            TileMetric::Sad.max_tile_error::<Gray>(64)
        );
    }

    #[test]
    fn metric_names_unique() {
        let mut names: Vec<_> = TileMetric::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), TileMetric::ALL.len());
    }

    #[test]
    #[should_panic(expected = "equal dimensions")]
    fn mismatched_views_panic() {
        let a = img(&[0; 4], 2, 2);
        let b = img(&[0; 2], 2, 1);
        let _ = tile_error(&a.full_view(), &b.full_view(), TileMetric::Sad);
    }
}
