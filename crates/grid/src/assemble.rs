//! Rebuilding the rearranged image `R` from an assignment.
//!
//! An assignment is a permutation `assignment[v] = u`: input tile `u` is
//! placed at target position `v`. [`assemble`] materializes the rearranged
//! image by copying every input tile to its assigned position.

use crate::layout::{LayoutError, TileLayout};
use mosaic_image::{Image, Pixel};

/// Validate that `assignment` is a permutation of `0..layout.tile_count()`.
pub fn is_permutation(assignment: &[usize], tile_count: usize) -> bool {
    if assignment.len() != tile_count {
        return false;
    }
    let mut seen = vec![false; tile_count];
    for &u in assignment {
        if u >= tile_count || seen[u] {
            return false;
        }
        seen[u] = true;
    }
    true
}

/// Build the rearranged image: tile `assignment[v]` of `input` lands at
/// target position `v`.
///
/// # Errors
/// Returns [`LayoutError`] when `input` does not match `layout`.
///
/// # Panics
/// Panics when `assignment` is not a permutation of `0..S` — upstream
/// solvers guarantee this, and silently accepting duplicates would produce
/// a mosaic that drops input tiles.
pub fn assemble<P: Pixel>(
    input: &Image<P>,
    layout: TileLayout,
    assignment: &[usize],
) -> Result<Image<P>, LayoutError> {
    layout.check_image(input)?;
    let s = layout.tile_count();
    assert!(
        is_permutation(assignment, s),
        "assignment must be a permutation of 0..{s}"
    );
    let m = layout.tile_size();
    let mut out =
        // lint:allow(panic) a constructed TileLayout always has a positive image_size
        Image::black(layout.image_size(), layout.image_size()).expect("layout size is valid");
    for (v, &u) in assignment.iter().enumerate() {
        let (dst_x, dst_y) = layout.tile_origin(v);
        let src = layout.tile_view(input, u);
        for row in 0..m {
            let dst_row = out.row_mut(dst_y + row);
            dst_row[dst_x..dst_x + m].copy_from_slice(src.row(row));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::build_error_matrix;
    use crate::metric::TileMetric;
    use mosaic_image::{synth, Gray};

    #[test]
    fn identity_assignment_reproduces_input() {
        let img = synth::plasma(32, 2, 3);
        let layout = TileLayout::new(32, 8).unwrap();
        let ident: Vec<usize> = (0..layout.tile_count()).collect();
        let out = assemble(&img, layout, &ident).unwrap();
        assert_eq!(out, img);
    }

    #[test]
    fn swap_assignment_swaps_tiles() {
        let img = synth::gradient(16);
        let layout = TileLayout::new(16, 8).unwrap(); // 4 tiles
        let out = assemble(&img, layout, &[1, 0, 2, 3]).unwrap();
        // Tile 1 now at position 0.
        assert_eq!(out.pixel(0, 0), img.pixel(8, 0));
        assert_eq!(out.pixel(8, 0), img.pixel(0, 0));
        assert_eq!(out.pixel(0, 8), img.pixel(0, 8));
    }

    #[test]
    fn assembled_total_matches_matrix_total() {
        // Error of assemble(input, a) against target == matrix total of a.
        let input = synth::fur(32, 7);
        let target = synth::portrait(32, 8);
        let layout = TileLayout::new(32, 8).unwrap();
        let m = build_error_matrix(&input, &target, layout, TileMetric::Sad).unwrap();
        let assignment: Vec<usize> = (0..layout.tile_count()).rev().collect();
        let rearranged = assemble(&input, layout, &assignment).unwrap();
        let direct = mosaic_image::metrics::sad(&rearranged, &target);
        assert_eq!(direct, m.assignment_total(&assignment));
    }

    #[test]
    fn permutation_validation() {
        assert!(is_permutation(&[0, 1, 2], 3));
        assert!(is_permutation(&[2, 0, 1], 3));
        assert!(!is_permutation(&[0, 0, 1], 3));
        assert!(!is_permutation(&[0, 1, 3], 3));
        assert!(!is_permutation(&[0, 1], 3));
        assert!(!is_permutation(&[0, 1, 2, 3], 3));
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn duplicate_assignment_panics() {
        let img = synth::gradient(16);
        let layout = TileLayout::new(16, 8).unwrap();
        let _ = assemble(&img, layout, &[0, 0, 1, 2]);
    }

    #[test]
    fn wrong_image_is_an_error() {
        let img = synth::gradient(32);
        let layout = TileLayout::new(16, 8).unwrap();
        assert!(assemble(&img, layout, &[0, 1, 2, 3]).is_err());
    }

    #[test]
    fn assembly_preserves_pixel_multiset() {
        let img = synth::checker(24, 6, 3);
        let layout = TileLayout::new(24, 8).unwrap();
        let assignment: Vec<usize> = vec![8, 7, 6, 5, 4, 3, 2, 1, 0];
        let out = assemble(&img, layout, &assignment).unwrap();
        let mut a: Vec<Gray> = img.pixels().to_vec();
        let mut b: Vec<Gray> = out.pixels().to_vec();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}
