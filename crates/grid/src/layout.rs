//! Tile grid geometry.
//!
//! A [`TileLayout`] captures the paper's parameters: image size `N`, tile
//! size `M`, and tile count `S = (N/M)²`. Tiles are indexed row-major in
//! `0..S`, matching the paper's `I_1..I_S` / `T_1..T_S` (shifted to
//! 0-based).

use mosaic_image::{Image, ImageView, Pixel};
use std::fmt;

/// Errors constructing a [`TileLayout`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// Tile size zero or larger than the image.
    InvalidTileSize {
        /// Requested tile edge `M`.
        tile_size: usize,
        /// Image edge `N`.
        image_size: usize,
    },
    /// `N` is not a multiple of `M`.
    NotDivisible {
        /// Image edge `N`.
        image_size: usize,
        /// Requested tile edge `M`.
        tile_size: usize,
    },
    /// The image is not square — the paper's pipeline operates on `N×N`
    /// images.
    NotSquare {
        /// Observed width.
        width: usize,
        /// Observed height.
        height: usize,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::InvalidTileSize {
                tile_size,
                image_size,
            } => write!(
                f,
                "tile size {tile_size} invalid for image size {image_size}"
            ),
            LayoutError::NotDivisible {
                image_size,
                tile_size,
            } => write!(
                f,
                "image size {image_size} is not a multiple of tile size {tile_size}"
            ),
            LayoutError::NotSquare { width, height } => {
                write!(f, "image {width}x{height} is not square")
            }
        }
    }
}

impl std::error::Error for LayoutError {}

/// Geometry of a square image divided into square tiles.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct TileLayout {
    image_size: usize,
    tile_size: usize,
    tiles_per_side: usize,
}

impl TileLayout {
    /// Build a layout for an `image_size × image_size` image with
    /// `tile_size × tile_size` tiles.
    ///
    /// # Errors
    /// Rejects zero/oversized tile sizes and non-divisible image sizes.
    pub fn new(image_size: usize, tile_size: usize) -> Result<Self, LayoutError> {
        if tile_size == 0 || tile_size > image_size {
            return Err(LayoutError::InvalidTileSize {
                tile_size,
                image_size,
            });
        }
        if !image_size.is_multiple_of(tile_size) {
            return Err(LayoutError::NotDivisible {
                image_size,
                tile_size,
            });
        }
        Ok(TileLayout {
            image_size,
            tile_size,
            tiles_per_side: image_size / tile_size,
        })
    }

    /// Build a layout from a grid resolution: `grid × grid` tiles, i.e. the
    /// paper's "divided into `32 × 32` tiles" phrasing.
    ///
    /// # Errors
    /// Same conditions as [`TileLayout::new`].
    pub fn with_grid(image_size: usize, grid: usize) -> Result<Self, LayoutError> {
        if grid == 0 || grid > image_size {
            return Err(LayoutError::InvalidTileSize {
                tile_size: 0,
                image_size,
            });
        }
        if !image_size.is_multiple_of(grid) {
            return Err(LayoutError::NotDivisible {
                image_size,
                tile_size: image_size / grid,
            });
        }
        TileLayout::new(image_size, image_size / grid)
    }

    /// Validate that `img` matches this layout's geometry.
    ///
    /// # Errors
    /// Returns [`LayoutError::NotSquare`] for non-square images and
    /// [`LayoutError::InvalidTileSize`] when the edge differs from `N`.
    pub fn check_image<P: Pixel>(&self, img: &Image<P>) -> Result<(), LayoutError> {
        let (w, h) = img.dimensions();
        if w != h {
            return Err(LayoutError::NotSquare {
                width: w,
                height: h,
            });
        }
        if w != self.image_size {
            return Err(LayoutError::InvalidTileSize {
                tile_size: self.tile_size,
                image_size: w,
            });
        }
        Ok(())
    }

    /// Image edge `N`.
    #[inline]
    pub fn image_size(&self) -> usize {
        self.image_size
    }

    /// Tile edge `M`.
    #[inline]
    pub fn tile_size(&self) -> usize {
        self.tile_size
    }

    /// Tiles per side `N / M`.
    #[inline]
    pub fn tiles_per_side(&self) -> usize {
        self.tiles_per_side
    }

    /// Total number of tiles `S = (N/M)²`.
    #[inline]
    pub fn tile_count(&self) -> usize {
        self.tiles_per_side * self.tiles_per_side
    }

    /// Pixels per tile `M²`.
    #[inline]
    pub fn pixels_per_tile(&self) -> usize {
        self.tile_size * self.tile_size
    }

    /// Row-major `(row, col)` of tile `index`.
    ///
    /// # Panics
    /// Panics when `index >= S`.
    #[inline]
    pub fn tile_position(&self, index: usize) -> (usize, usize) {
        assert!(index < self.tile_count(), "tile index {index} out of range");
        (index / self.tiles_per_side, index % self.tiles_per_side)
    }

    /// Tile index of `(row, col)`.
    ///
    /// # Panics
    /// Panics when either coordinate is out of range.
    #[inline]
    pub fn tile_index(&self, row: usize, col: usize) -> usize {
        assert!(
            row < self.tiles_per_side && col < self.tiles_per_side,
            "tile ({row},{col}) out of range"
        );
        row * self.tiles_per_side + col
    }

    /// Pixel origin `(x, y)` of tile `index`.
    #[inline]
    pub fn tile_origin(&self, index: usize) -> (usize, usize) {
        let (row, col) = self.tile_position(index);
        (col * self.tile_size, row * self.tile_size)
    }

    /// Borrow the view of tile `index` in `img`.
    ///
    /// # Panics
    /// Panics when the image does not match the layout (checked in debug
    /// via [`TileLayout::check_image`] semantics) or `index` is out of
    /// range.
    pub fn tile_view<'a, P: Pixel>(&self, img: &'a Image<P>, index: usize) -> ImageView<'a, P> {
        let (x, y) = self.tile_origin(index);
        img.view(x, y, self.tile_size, self.tile_size)
            // lint:allow(panic) documented "# Panics" contract: callers pass images matching the layout
            .expect("image must match the layout geometry")
    }

    /// All tile views of `img` in index order.
    pub fn tiles<'a, P: Pixel>(&self, img: &'a Image<P>) -> Vec<ImageView<'a, P>> {
        (0..self.tile_count())
            .map(|i| self.tile_view(img, i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_image::synth;

    #[test]
    fn construction_validates() {
        let l = TileLayout::new(512, 16).unwrap();
        assert_eq!(l.image_size(), 512);
        assert_eq!(l.tile_size(), 16);
        assert_eq!(l.tiles_per_side(), 32);
        assert_eq!(l.tile_count(), 1024);
        assert_eq!(l.pixels_per_tile(), 256);

        assert!(matches!(
            TileLayout::new(512, 0),
            Err(LayoutError::InvalidTileSize { .. })
        ));
        assert!(matches!(
            TileLayout::new(512, 600),
            Err(LayoutError::InvalidTileSize { .. })
        ));
        assert!(matches!(
            TileLayout::new(512, 100),
            Err(LayoutError::NotDivisible { .. })
        ));
    }

    #[test]
    fn with_grid_matches_paper_phrasing() {
        // "divided into 32 x 32 tiles" of a 512 x 512 image -> M = 16.
        let l = TileLayout::with_grid(512, 32).unwrap();
        assert_eq!(l.tile_size(), 16);
        assert_eq!(l.tile_count(), 32 * 32);
        assert!(TileLayout::with_grid(512, 0).is_err());
        assert!(TileLayout::with_grid(100, 33).is_err());
    }

    #[test]
    fn index_position_roundtrip() {
        let l = TileLayout::new(64, 8).unwrap();
        for i in 0..l.tile_count() {
            let (r, c) = l.tile_position(i);
            assert_eq!(l.tile_index(r, c), i);
        }
    }

    #[test]
    fn origins_cover_image_without_overlap() {
        let l = TileLayout::new(32, 8).unwrap();
        let mut seen = vec![false; 32 * 32];
        for i in 0..l.tile_count() {
            let (x, y) = l.tile_origin(i);
            for dy in 0..8 {
                for dx in 0..8 {
                    let idx = (y + dy) * 32 + (x + dx);
                    assert!(!seen[idx], "pixel covered twice");
                    seen[idx] = true;
                }
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn tile_views_match_manual_indexing() {
        let img = synth::gradient(32);
        let l = TileLayout::new(32, 8).unwrap();
        let v = l.tile_view(&img, 5); // row 1, col 1 at 4 tiles/side? no: 32/8=4 per side, index 5 = (1,1)
        assert_eq!(l.tile_position(5), (1, 1));
        assert_eq!(v.pixel(0, 0), img.pixel(8, 8));
        assert_eq!(v.pixel(7, 7), img.pixel(15, 15));
    }

    #[test]
    fn tiles_returns_all_views() {
        let img = synth::gradient(16);
        let l = TileLayout::new(16, 4).unwrap();
        let tiles = l.tiles(&img);
        assert_eq!(tiles.len(), 16);
        assert_eq!(tiles[0].pixel(0, 0), img.pixel(0, 0));
        assert_eq!(tiles[15].pixel(3, 3), img.pixel(15, 15));
    }

    #[test]
    fn check_image_rejects_mismatches() {
        let l = TileLayout::new(16, 4).unwrap();
        let ok = synth::gradient(16);
        assert!(l.check_image(&ok).is_ok());
        let wrong_size = synth::gradient(32);
        assert!(matches!(
            l.check_image(&wrong_size),
            Err(LayoutError::InvalidTileSize { .. })
        ));
        let non_square = mosaic_image::Image::from_fn(16, 8, |_, _| mosaic_image::Gray(0)).unwrap();
        assert!(matches!(
            l.check_image(&non_square),
            Err(LayoutError::NotSquare { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn tile_position_out_of_range_panics() {
        let l = TileLayout::new(16, 4).unwrap();
        let _ = l.tile_position(16);
    }

    #[test]
    fn single_tile_layout() {
        let l = TileLayout::new(8, 8).unwrap();
        assert_eq!(l.tile_count(), 1);
        assert_eq!(l.tile_origin(0), (0, 0));
    }

    #[test]
    fn error_display() {
        assert!(TileLayout::new(10, 3)
            .unwrap_err()
            .to_string()
            .contains("10"));
        assert!(TileLayout::new(10, 0)
            .unwrap_err()
            .to_string()
            .contains("invalid"));
    }
}
