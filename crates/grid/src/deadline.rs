//! Cooperative deadlines for bounding worst-case work per request.
//!
//! A [`Deadline`] is a cheap, copyable token threaded through the long
//! loops of the pipeline (error-matrix row builds, search sweeps). Code
//! holding one polls [`Deadline::check`] at natural work boundaries and
//! unwinds with [`DeadlineExceeded`] when the budget is spent — there is
//! no preemption, so the granularity of cancellation is one unit of work
//! between checks (one matrix row, one search sweep).
//!
//! [`Deadline::NONE`] never expires, which lets unbounded entry points
//! share one implementation with their bounded counterparts.

use std::time::{Duration, Instant};

/// A point in time after which cooperative work should stop.
///
/// `Deadline` is `Copy` and internally just an `Option<Instant>`; an
/// absent instant means "no deadline" and never expires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// The deadline that never expires.
    pub const NONE: Deadline = Deadline { at: None };

    /// A deadline `budget` from now. A budget large enough to overflow
    /// the clock is treated as unbounded.
    pub fn after(budget: Duration) -> Deadline {
        Deadline {
            at: Instant::now().checked_add(budget),
        }
    }

    /// A deadline `ms` milliseconds from now; `0` means unbounded,
    /// matching the service convention that a zero knob disables the
    /// limit.
    pub fn after_millis(ms: u64) -> Deadline {
        if ms == 0 {
            Deadline::NONE
        } else {
            Deadline::after(Duration::from_millis(ms))
        }
    }

    /// A deadline at an absolute instant.
    pub fn at(instant: Instant) -> Deadline {
        Deadline { at: Some(instant) }
    }

    /// Whether this deadline can ever expire.
    pub fn is_unbounded(&self) -> bool {
        self.at.is_none()
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        self.at.is_some_and(|at| Instant::now() >= at)
    }

    /// Time left before expiry; `None` when unbounded, zero when
    /// already expired.
    pub fn remaining(&self) -> Option<Duration> {
        self.at
            .map(|at| at.saturating_duration_since(Instant::now()))
    }

    /// Poll the deadline at a work boundary.
    ///
    /// # Errors
    /// Returns [`DeadlineExceeded`] when the deadline has passed.
    pub fn check(&self) -> Result<(), DeadlineExceeded> {
        if self.expired() {
            Err(DeadlineExceeded)
        } else {
            Ok(())
        }
    }
}

/// Error signalling that a [`Deadline`] expired mid-computation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeadlineExceeded;

impl std::fmt::Display for DeadlineExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deadline exceeded")
    }
}

impl std::error::Error for DeadlineExceeded {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_expires() {
        let d = Deadline::NONE;
        assert!(d.is_unbounded());
        assert!(!d.expired());
        assert!(d.check().is_ok());
        assert_eq!(d.remaining(), None);
    }

    #[test]
    fn zero_budget_expires_immediately() {
        let d = Deadline::after(Duration::ZERO);
        assert!(!d.is_unbounded());
        assert!(d.expired());
        assert_eq!(d.check(), Err(DeadlineExceeded));
        assert_eq!(d.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn far_future_deadline_is_bounded_but_live() {
        let d = Deadline::after(Duration::from_secs(3600));
        assert!(!d.is_unbounded());
        assert!(!d.expired());
        assert!(d.check().is_ok());
        assert!(d.remaining().is_some_and(|r| r > Duration::from_secs(3000)));
    }

    #[test]
    fn after_millis_zero_is_unbounded() {
        assert!(Deadline::after_millis(0).is_unbounded());
        assert!(!Deadline::after_millis(50).is_unbounded());
    }

    #[test]
    fn past_instant_is_expired() {
        let d = Deadline::at(Instant::now());
        // An `at` in the past (or exactly now) reads as expired.
        std::thread::sleep(Duration::from_millis(1));
        assert!(d.expired());
    }

    #[test]
    fn display_and_error_impls() {
        let e: Box<dyn std::error::Error> = Box::new(DeadlineExceeded);
        assert_eq!(e.to_string(), "deadline exceeded");
    }
}
