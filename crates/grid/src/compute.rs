//! Error-matrix builders (Step 2 of the paper).
//!
//! [`build_error_matrix`] is the paper's sequential CPU reference.
//! [`build_error_matrix_threaded`] is the multi-core CPU baseline, splitting
//! rows across scoped worker threads — each row of the matrix belongs to
//! one input tile, mirroring the paper's GPU decomposition where "each CUDA
//! block is responsible for computing S error values
//! E(I_u, T_1) … E(I_u, T_S)".
//!
//! The CUDA-model builder, which additionally stages the input tile in
//! simulated shared memory, lives in the `photomosaic` crate on top of
//! `mosaic-gpu`.

use crate::deadline::{Deadline, DeadlineExceeded};
use crate::layout::{LayoutError, TileLayout};
use crate::matrix::ErrorMatrix;
use crate::metric::{tile_error, tile_error_scalar, TileMetric};
use mosaic_image::{Image, Pixel};
use mosaic_pool::ThreadPool;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Force SIMD kernel detection now and publish the outcome.
///
/// Dispatch is cached in a process-wide `OnceLock`
/// ([`mosaic_image::kernel::active`]); calling this at pool/server
/// startup means no worker thread ever pays the `std::arch` feature
/// probe mid-request. The resolved level is published on the
/// `kernel_dispatch` gauge (0 = scalar, 1 = SSE4.1, 2 = AVX2) and
/// returned for logs.
pub fn init_simd_kernels() -> mosaic_image::kernel::SimdLevel {
    let level = mosaic_image::kernel::active().level();
    mosaic_telemetry::registry()
        .gauge("kernel_dispatch")
        .set(i64::from(level.code()));
    level
}

/// Why a bounded matrix build did not produce a matrix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// One of the images does not match the layout.
    Layout(LayoutError),
    /// The deadline expired before the build finished.
    DeadlineExceeded(DeadlineExceeded),
}

impl From<LayoutError> for BuildError {
    fn from(e: LayoutError) -> Self {
        BuildError::Layout(e)
    }
}

impl From<DeadlineExceeded> for BuildError {
    fn from(e: DeadlineExceeded) -> Self {
        BuildError::DeadlineExceeded(e)
    }
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Layout(e) => write!(f, "layout error: {e:?}"),
            BuildError::DeadlineExceeded(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for BuildError {}

fn checked_layouts<P: Pixel>(
    input: &Image<P>,
    target: &Image<P>,
    layout: TileLayout,
    metric: TileMetric,
) -> Result<(), LayoutError> {
    layout.check_image(input)?;
    layout.check_image(target)?;
    // Prove u32 entries cannot overflow for this layout and metric.
    let bound = metric.max_tile_error::<P>(layout.pixels_per_tile());
    assert!(
        bound <= u64::from(u32::MAX),
        "metric {metric:?} with tile {}x{} overflows u32 entries",
        layout.tile_size(),
        layout.tile_size()
    );
    Ok(())
}

/// Sequential error-matrix computation (the paper's CPU reference for
/// Table II).
///
/// # Errors
/// Returns [`LayoutError`] when either image does not match `layout`.
pub fn build_error_matrix<P: Pixel>(
    input: &Image<P>,
    target: &Image<P>,
    layout: TileLayout,
    metric: TileMetric,
) -> Result<ErrorMatrix, LayoutError> {
    checked_layouts(input, target, layout, metric)?;
    let _span = mosaic_telemetry::tracer().span("error_matrix_serial");
    let start = std::time::Instant::now();
    let s = layout.tile_count();
    let input_tiles = layout.tiles(input);
    let target_tiles = layout.tiles(target);
    let mut matrix = ErrorMatrix::zeros(s);
    for (u, iu) in input_tiles.iter().enumerate() {
        let row = matrix.row_mut(u);
        for (v, tv) in target_tiles.iter().enumerate() {
            row[v] = tile_error(iu, tv, metric) as u32;
        }
    }
    mosaic_telemetry::registry()
        .histogram("error_matrix_simd_us")
        .record_duration_us(start.elapsed());
    Ok(matrix)
}

/// [`build_error_matrix`] forced onto the scalar oracle kernels.
///
/// The SIMD dispatch is process-wide and cached, so the only way to get
/// a guaranteed-scalar matrix on an AVX2 host is to bypass it. The
/// differential tests assert this builder and [`build_error_matrix`]
/// produce bit-identical matrices; the bench publishes the timing gap.
///
/// # Errors
/// Returns [`LayoutError`] when either image does not match `layout`.
pub fn build_error_matrix_scalar<P: Pixel>(
    input: &Image<P>,
    target: &Image<P>,
    layout: TileLayout,
    metric: TileMetric,
) -> Result<ErrorMatrix, LayoutError> {
    checked_layouts(input, target, layout, metric)?;
    let s = layout.tile_count();
    let input_tiles = layout.tiles(input);
    let target_tiles = layout.tiles(target);
    let mut matrix = ErrorMatrix::zeros(s);
    for (u, iu) in input_tiles.iter().enumerate() {
        let row = matrix.row_mut(u);
        for (v, tv) in target_tiles.iter().enumerate() {
            row[v] = tile_error_scalar(iu, tv, metric) as u32;
        }
    }
    Ok(matrix)
}

/// Multi-threaded error-matrix computation using `threads` workers.
///
/// Rows are distributed in contiguous chunks; every worker writes disjoint
/// rows so no synchronization is needed beyond the scope join.
///
/// # Errors
/// Returns [`LayoutError`] when either image does not match `layout`.
///
/// # Panics
/// Panics when `threads == 0`.
pub fn build_error_matrix_threaded<P: Pixel>(
    input: &Image<P>,
    target: &Image<P>,
    layout: TileLayout,
    metric: TileMetric,
    threads: usize,
) -> Result<ErrorMatrix, LayoutError> {
    match build_error_matrix_threaded_bounded(
        input,
        target,
        layout,
        metric,
        threads,
        &Deadline::NONE,
    ) {
        Ok(matrix) => Ok(matrix),
        Err(BuildError::Layout(e)) => Err(e),
        // lint:allow(panic) Deadline::NONE can never be exceeded
        Err(BuildError::DeadlineExceeded(_)) => unreachable!("unbounded deadline expired"),
    }
}

/// [`build_error_matrix_threaded`] with cooperative cancellation.
///
/// Workers poll `deadline` at every row boundary and stop early once it
/// expires; the partially filled matrix is discarded and
/// [`BuildError::DeadlineExceeded`] is returned. Worst-case overshoot is
/// therefore one matrix row per worker.
///
/// # Errors
/// Returns [`BuildError::Layout`] when either image does not match
/// `layout`, and [`BuildError::DeadlineExceeded`] when `deadline` expires
/// mid-build.
///
/// # Panics
/// Panics when `threads == 0`.
pub fn build_error_matrix_threaded_bounded<P: Pixel>(
    input: &Image<P>,
    target: &Image<P>,
    layout: TileLayout,
    metric: TileMetric,
    threads: usize,
    deadline: &Deadline,
) -> Result<ErrorMatrix, BuildError> {
    build_error_matrix_threaded_bounded_in(
        mosaic_pool::global(),
        input,
        target,
        layout,
        metric,
        threads,
        deadline,
    )
}

/// [`build_error_matrix_threaded_bounded`] dispatching on an explicit
/// [`ThreadPool`] instead of the process-wide one (the service hands
/// every job its per-server pool).
///
/// # Errors
/// See [`build_error_matrix_threaded_bounded`].
///
/// # Panics
/// Panics when `threads == 0`.
pub fn build_error_matrix_threaded_bounded_in<P: Pixel>(
    pool: &ThreadPool,
    input: &Image<P>,
    target: &Image<P>,
    layout: TileLayout,
    metric: TileMetric,
    threads: usize,
    deadline: &Deadline,
) -> Result<ErrorMatrix, BuildError> {
    build_threaded_impl(
        pool,
        input,
        target,
        layout,
        metric,
        threads,
        deadline,
        &|| (),
    )
}

/// The shared implementation. `row_hook` runs after each row's deadline
/// poll and before its errors are computed; production callers pass a
/// no-op, the deadline regression tests inject a delay to pin down the
/// expiry-after-completion race deterministically.
#[allow(clippy::too_many_arguments)]
fn build_threaded_impl<P: Pixel>(
    pool: &ThreadPool,
    input: &Image<P>,
    target: &Image<P>,
    layout: TileLayout,
    metric: TileMetric,
    threads: usize,
    deadline: &Deadline,
    row_hook: &(dyn Fn() + Sync),
) -> Result<ErrorMatrix, BuildError> {
    assert!(threads > 0, "at least one worker thread is required");
    checked_layouts(input, target, layout, metric)?;
    deadline.check()?;
    let _span = mosaic_telemetry::tracer().span("error_matrix_threaded");
    let start = std::time::Instant::now();
    let s = layout.tile_count();
    let rows_per_worker = s.div_ceil(threads);
    let mut entries = vec![0u32; s * s];
    let rows_done = AtomicUsize::new(0);

    // One pool chunk per worker's row range; each chunk is a disjoint
    // slab of whole rows, so workers never share a row.
    pool.parallel_for_mut(&mut entries, rows_per_worker * s, |chunk, slab| {
        let target_tiles = layout.tiles(target);
        let base = chunk * rows_per_worker;
        for (offset, row) in slab.chunks_mut(s).enumerate() {
            if deadline.expired() {
                return;
            }
            row_hook();
            let iu = layout.tile_view(input, base + offset);
            for (v, tv) in target_tiles.iter().enumerate() {
                row[v] = tile_error(&iu, tv, metric) as u32;
            }
            rows_done.fetch_add(1, Ordering::Relaxed);
        }
    });

    // Fail only when a worker actually abandoned rows. A deadline that
    // expires after the last row is computed must not discard a
    // complete, valid matrix (it used to: the old epilogue re-checked
    // the clock instead of the work).
    if rows_done.load(Ordering::Relaxed) < s {
        return Err(BuildError::DeadlineExceeded(DeadlineExceeded));
    }
    mosaic_telemetry::registry()
        .histogram("error_matrix_simd_us")
        .record_duration_us(start.elapsed());
    Ok(ErrorMatrix::from_vec(s, entries))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_image::synth;

    #[test]
    fn serial_matrix_matches_direct_tile_errors() {
        let input = synth::plasma(32, 1, 3);
        let target = synth::checker(32, 8, 2);
        let layout = TileLayout::new(32, 8).unwrap();
        let m = build_error_matrix(&input, &target, layout, TileMetric::Sad).unwrap();
        assert_eq!(m.size(), 16);
        for u in 0..16 {
            for v in 0..16 {
                let expected = tile_error(
                    &layout.tile_view(&input, u),
                    &layout.tile_view(&target, v),
                    TileMetric::Sad,
                ) as u32;
                assert_eq!(m.get(u, v), expected, "mismatch at ({u},{v})");
            }
        }
    }

    #[test]
    fn diagonal_is_zero_when_input_equals_target() {
        let img = synth::portrait(32, 5);
        let layout = TileLayout::new(32, 8).unwrap();
        let m = build_error_matrix(&img, &img, layout, TileMetric::Sad).unwrap();
        for u in 0..m.size() {
            assert_eq!(m.get(u, u), 0);
        }
    }

    #[test]
    fn threaded_matches_serial_for_every_metric_and_thread_count() {
        let input = synth::fur(48, 3);
        let target = synth::drapery(48, 9);
        let layout = TileLayout::new(48, 8).unwrap();
        for metric in TileMetric::ALL {
            let serial = build_error_matrix(&input, &target, layout, metric).unwrap();
            for threads in [1, 2, 3, 7, 16, 64] {
                let par =
                    build_error_matrix_threaded(&input, &target, layout, metric, threads).unwrap();
                assert_eq!(par, serial, "metric {metric:?} threads {threads}");
            }
        }
    }

    /// The oracle differential: the dispatched builder (whatever SIMD
    /// level this host resolves to) must be bit-identical to the
    /// scalar-forced builder on every metric.
    #[test]
    fn dispatched_matrix_is_bit_identical_to_scalar_oracle() {
        let level = init_simd_kernels();
        let input = synth::fur(48, 3);
        let target = synth::drapery(48, 9);
        for tile in [4, 6, 8, 12] {
            let layout = TileLayout::new(48, tile).unwrap();
            for metric in TileMetric::ALL {
                let dispatched = build_error_matrix(&input, &target, layout, metric).unwrap();
                let scalar = build_error_matrix_scalar(&input, &target, layout, metric).unwrap();
                assert_eq!(dispatched, scalar, "level {level:?} tile {tile} {metric:?}");
            }
        }
    }

    #[test]
    fn init_simd_kernels_is_stable_and_published() {
        let first = init_simd_kernels();
        let second = init_simd_kernels();
        assert_eq!(first, second);
        assert_eq!(
            mosaic_telemetry::registry().gauge("kernel_dispatch").get(),
            i64::from(first.code())
        );
    }

    #[test]
    fn layout_mismatch_is_an_error() {
        let input = synth::gradient(32);
        let target = synth::gradient(64);
        let layout = TileLayout::new(32, 8).unwrap();
        assert!(build_error_matrix(&input, &target, layout, TileMetric::Sad).is_err());
        assert!(build_error_matrix_threaded(&input, &target, layout, TileMetric::Sad, 4).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_panics() {
        let img = synth::gradient(16);
        let layout = TileLayout::new(16, 8).unwrap();
        let _ = build_error_matrix_threaded(&img, &img, layout, TileMetric::Sad, 0);
    }

    #[test]
    fn bounded_build_with_live_deadline_matches_serial() {
        let input = synth::fur(48, 3);
        let target = synth::drapery(48, 9);
        let layout = TileLayout::new(48, 8).unwrap();
        let serial = build_error_matrix(&input, &target, layout, TileMetric::Sad).unwrap();
        let deadline = Deadline::after(std::time::Duration::from_secs(3600));
        let bounded = build_error_matrix_threaded_bounded(
            &input,
            &target,
            layout,
            TileMetric::Sad,
            4,
            &deadline,
        )
        .unwrap();
        assert_eq!(bounded, serial);
    }

    #[test]
    fn bounded_build_with_expired_deadline_is_cancelled() {
        let input = synth::fur(48, 3);
        let target = synth::drapery(48, 9);
        let layout = TileLayout::new(48, 8).unwrap();
        let expired = Deadline::after(std::time::Duration::ZERO);
        let result = build_error_matrix_threaded_bounded(
            &input,
            &target,
            layout,
            TileMetric::Sad,
            4,
            &expired,
        );
        assert_eq!(
            result,
            Err(BuildError::DeadlineExceeded(
                crate::deadline::DeadlineExceeded
            ))
        );
    }

    #[test]
    fn bounded_build_reports_layout_errors_before_deadline() {
        let input = synth::gradient(32);
        let target = synth::gradient(64);
        let layout = TileLayout::new(32, 8).unwrap();
        let expired = Deadline::after(std::time::Duration::ZERO);
        let result = build_error_matrix_threaded_bounded(
            &input,
            &target,
            layout,
            TileMetric::Sad,
            4,
            &expired,
        );
        assert!(matches!(result, Err(BuildError::Layout(_))));
    }

    /// Regression: the old epilogue was `deadline.check()?` — a deadline
    /// that expired *after* every row was computed (but before the
    /// epilogue ran) discarded a complete matrix. The injected row hook
    /// outlasts the deadline while the only row is being computed, so
    /// by the time the build finishes the clock has expired even though
    /// no work was abandoned. That must be a success.
    #[test]
    fn deadline_expiring_after_all_rows_complete_is_not_an_error() {
        let img = synth::gradient(16);
        let layout = TileLayout::new(16, 16).unwrap(); // S = 1: one row
        let pool = mosaic_pool::ThreadPool::new(1);
        let deadline = Deadline::after(std::time::Duration::from_millis(40));
        let result = build_threaded_impl(
            &pool,
            &img,
            &img,
            layout,
            TileMetric::Sad,
            1,
            &deadline,
            &|| std::thread::sleep(std::time::Duration::from_millis(120)),
        );
        assert!(deadline.expired(), "hook must outlast the deadline");
        let matrix = result.expect("completed work must survive a late expiry");
        assert_eq!(matrix.get(0, 0), 0);
    }

    /// The converse still fails: with the same mid-row delay but a
    /// second row to go, the worker really does abandon work.
    #[test]
    fn deadline_expiring_with_rows_left_is_still_cancelled() {
        let img = synth::gradient(32);
        let layout = TileLayout::new(32, 16).unwrap(); // S = 4
        let pool = mosaic_pool::ThreadPool::new(1);
        let deadline = Deadline::after(std::time::Duration::from_millis(40));
        let result = build_threaded_impl(
            &pool,
            &img,
            &img,
            layout,
            TileMetric::Sad,
            1,
            &deadline,
            &|| std::thread::sleep(std::time::Duration::from_millis(120)),
        );
        assert_eq!(
            result,
            Err(BuildError::DeadlineExceeded(
                crate::deadline::DeadlineExceeded
            ))
        );
    }

    #[test]
    fn explicit_pool_variant_matches_serial() {
        let input = synth::fur(48, 3);
        let target = synth::drapery(48, 9);
        let layout = TileLayout::new(48, 8).unwrap();
        let serial = build_error_matrix(&input, &target, layout, TileMetric::Sad).unwrap();
        let pool = mosaic_pool::ThreadPool::new(3);
        let built = build_error_matrix_threaded_bounded_in(
            &pool,
            &input,
            &target,
            layout,
            TileMetric::Sad,
            5,
            &Deadline::NONE,
        )
        .unwrap();
        assert_eq!(built, serial);
    }

    #[test]
    fn more_threads_than_rows_is_fine() {
        let img = synth::gradient(16);
        let layout = TileLayout::new(16, 8).unwrap(); // S = 4
        let m = build_error_matrix_threaded(&img, &img, layout, TileMetric::Sad, 32).unwrap();
        assert_eq!(m.size(), 4);
        for u in 0..4 {
            assert_eq!(m.get(u, u), 0);
        }
    }
}
