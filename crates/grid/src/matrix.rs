//! The dense S×S error matrix of Step 2.
//!
//! Entry `(u, v)` holds `E(I_u, T_v)`: the error of placing input tile `u`
//! at target position `v`. Entries are `u32` (the metric layer proves the
//! bound fits; see [`crate::metric::TileMetric::max_tile_error`]); totals
//! over an assignment are accumulated in `u64`.

use std::fmt;

/// Dense square matrix of tile errors.
#[derive(Clone, PartialEq, Eq)]
pub struct ErrorMatrix {
    size: usize,
    data: Vec<u32>,
}

impl ErrorMatrix {
    /// Zero matrix of dimension `size × size`.
    ///
    /// # Panics
    /// Panics when `size == 0`.
    pub fn zeros(size: usize) -> Self {
        assert!(size > 0, "error matrix must be non-empty");
        ErrorMatrix {
            size,
            data: vec![0; size * size],
        }
    }

    /// Wrap an existing row-major buffer.
    ///
    /// # Panics
    /// Panics when `data.len() != size * size` or `size == 0`.
    pub fn from_vec(size: usize, data: Vec<u32>) -> Self {
        assert!(size > 0, "error matrix must be non-empty");
        assert_eq!(
            data.len(),
            size * size,
            "buffer length {} does not match {size}x{size}",
            data.len()
        );
        ErrorMatrix { size, data }
    }

    /// Matrix dimension `S`.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// `E(I_u, T_v)`.
    ///
    /// # Panics
    /// Panics on out-of-range indices.
    #[inline]
    pub fn get(&self, input_tile: usize, target_pos: usize) -> u32 {
        assert!(
            input_tile < self.size && target_pos < self.size,
            "({input_tile},{target_pos}) out of range for S={}",
            self.size
        );
        self.data[input_tile * self.size + target_pos]
    }

    /// Set `E(I_u, T_v)`.
    ///
    /// # Panics
    /// Panics on out-of-range indices.
    #[inline]
    pub fn set(&mut self, input_tile: usize, target_pos: usize, value: u32) {
        assert!(
            input_tile < self.size && target_pos < self.size,
            "({input_tile},{target_pos}) out of range for S={}",
            self.size
        );
        self.data[input_tile * self.size + target_pos] = value;
    }

    /// Row `u`: the errors of input tile `u` against every target position.
    #[inline]
    pub fn row(&self, input_tile: usize) -> &[u32] {
        assert!(input_tile < self.size, "row {input_tile} out of range");
        &self.data[input_tile * self.size..(input_tile + 1) * self.size]
    }

    /// Mutable row `u`.
    #[inline]
    pub fn row_mut(&mut self, input_tile: usize) -> &mut [u32] {
        assert!(input_tile < self.size, "row {input_tile} out of range");
        &mut self.data[input_tile * self.size..(input_tile + 1) * self.size]
    }

    /// Raw row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.data
    }

    /// Split the storage into disjoint mutable row chunks, one per row.
    /// Used by the threaded builders to fill rows concurrently without
    /// locks.
    pub fn rows_mut(&mut self) -> impl Iterator<Item = &mut [u32]> {
        self.data.chunks_exact_mut(self.size)
    }

    /// Total error of an assignment: `assignment[v] = u` means input tile
    /// `u` is placed at target position `v` (the paper's Eq. 2).
    ///
    /// # Panics
    /// Panics when `assignment.len() != S` or any entry is out of range.
    pub fn assignment_total(&self, assignment: &[usize]) -> u64 {
        assert_eq!(
            assignment.len(),
            self.size,
            "assignment length must equal S"
        );
        assignment
            .iter()
            .enumerate()
            .map(|(v, &u)| u64::from(self.get(u, v)))
            .sum()
    }

    /// The gain (error reduction, possibly negative) of swapping the input
    /// tiles at target positions `p` and `q` under `assignment`.
    ///
    /// Positive gain means the swap strictly reduces the paper's Eq. (2)
    /// total — the condition on line 4 of Algorithms 1 and 2.
    #[inline]
    pub fn swap_gain(&self, assignment: &[usize], p: usize, q: usize) -> i64 {
        let u = assignment[p];
        let v = assignment[q];
        let before = i64::from(self.get(u, p)) + i64::from(self.get(v, q));
        let after = i64::from(self.get(v, p)) + i64::from(self.get(u, q));
        before - after
    }
}

impl fmt::Debug for ErrorMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ErrorMatrix({0}x{0})", self.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ErrorMatrix {
        // 3x3: E(u,v) = 10u + v
        ErrorMatrix::from_vec(3, vec![0, 1, 2, 10, 11, 12, 20, 21, 22])
    }

    #[test]
    fn get_set_row() {
        let mut m = small();
        assert_eq!(m.get(1, 2), 12);
        assert_eq!(m.row(2), &[20, 21, 22]);
        m.set(0, 0, 99);
        assert_eq!(m.get(0, 0), 99);
        m.row_mut(1)[1] = 7;
        assert_eq!(m.get(1, 1), 7);
    }

    #[test]
    fn zeros_is_all_zero() {
        let m = ErrorMatrix::zeros(4);
        assert_eq!(m.size(), 4);
        assert!(m.as_slice().iter().all(|&v| v == 0));
    }

    #[test]
    fn assignment_total_identity_and_reverse() {
        let m = small();
        // identity: E(0,0)+E(1,1)+E(2,2) = 0+11+22
        assert_eq!(m.assignment_total(&[0, 1, 2]), 33);
        // reversed: E(2,0)+E(1,1)+E(0,2) = 20+11+2
        assert_eq!(m.assignment_total(&[2, 1, 0]), 33);
    }

    #[test]
    fn swap_gain_matches_totals() {
        let m = ErrorMatrix::from_vec(2, vec![0, 5, 9, 1]);
        // assignment [1,0]: tile 1 at pos 0, tile 0 at pos 1.
        let a = [1usize, 0usize];
        let before = m.assignment_total(&a);
        let after = m.assignment_total(&[0, 1]);
        let gain = m.swap_gain(&a, 0, 1);
        assert_eq!(gain, before as i64 - after as i64);
        assert_eq!(gain, (9 + 5) - 1);
    }

    #[test]
    fn swap_gain_zero_for_same_tile_pairing() {
        let m = small();
        // Swapping positions holding the same relative structure can still
        // be zero-gain: identical rows.
        let m2 = ErrorMatrix::from_vec(2, vec![3, 3, 3, 3]);
        assert_eq!(m2.swap_gain(&[0, 1], 0, 1), 0);
        let _ = m;
    }

    #[test]
    fn rows_mut_yields_each_row_once() {
        let mut m = small();
        let sizes: Vec<usize> = m.rows_mut().map(|r| r.len()).collect();
        assert_eq!(sizes, vec![3, 3, 3]);
        for (i, row) in m.rows_mut().enumerate() {
            row[0] = i as u32 * 100;
        }
        assert_eq!(m.get(2, 0), 200);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let _ = small().get(3, 0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_wrong_len_panics() {
        let _ = ErrorMatrix::from_vec(2, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_size_panics() {
        let _ = ErrorMatrix::zeros(0);
    }

    #[test]
    #[should_panic(expected = "length must equal")]
    fn assignment_total_wrong_len_panics() {
        let _ = small().assignment_total(&[0, 1]);
    }
}
