//! Tiling substrate: tile layouts, tile error metrics and the S×S error
//! matrix (Step 2 of the paper's pipeline).
//!
//! §II of the paper divides an `N×N` input image and target image into
//! `S = (N/M)²` tiles of `M×M` pixels and precomputes all `S²` pairwise
//! errors `E(I_u, T_v)`. This crate owns:
//!
//! * [`layout`] — the [`TileLayout`] geometry (N, M, S, index↔coordinate
//!   conversions);
//! * [`metric`] — per-tile error metrics: the paper's SAD (Eq. 1) plus SSD
//!   and a cheap mean-intensity metric for the ablation benches;
//! * [`matrix`] — the dense [`ErrorMatrix`] with `u32` entries and `u64`
//!   assignment totals;
//! * [`compute`] — serial and multi-threaded matrix builders (the threaded
//!   builder is the CPU-parallel baseline; the CUDA-model builder lives in
//!   the `photomosaic` crate on top of `mosaic-gpu`);
//! * [`assemble`] — rebuilding the rearranged image R from an assignment;
//! * [`deadline`] — the cooperative [`Deadline`] token the bounded builders
//!   and the search loops above this crate poll to cap worst-case work.
//!
//! # Example
//!
//! ```
//! use mosaic_grid::{assemble, build_error_matrix, TileLayout, TileMetric};
//! use mosaic_image::synth::Scene;
//!
//! let input = Scene::Plasma.render(32, 1);
//! let target = Scene::Checker.render(32, 2);
//! let layout = TileLayout::with_grid(32, 4).unwrap(); // S = 16 tiles
//! let matrix = build_error_matrix(&input, &target, layout, TileMetric::Sad).unwrap();
//!
//! // Eq. (2) for the identity arrangement equals the direct image SAD.
//! let identity: Vec<usize> = (0..16).collect();
//! assert_eq!(
//!     matrix.assignment_total(&identity),
//!     mosaic_image::metrics::sad(&input, &target),
//! );
//! assert_eq!(assemble(&input, layout, &identity).unwrap(), input);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assemble;
pub mod compute;
pub mod deadline;
pub mod layout;
pub mod matrix;
pub mod metric;

pub use assemble::assemble;
pub use compute::{
    build_error_matrix, build_error_matrix_scalar, build_error_matrix_threaded,
    build_error_matrix_threaded_bounded, build_error_matrix_threaded_bounded_in, init_simd_kernels,
    BuildError,
};
pub use deadline::{Deadline, DeadlineExceeded};
pub use layout::{LayoutError, TileLayout};
pub use matrix::ErrorMatrix;
pub use metric::{tile_error, tile_error_scalar, tile_error_with, TileMetric};
