//! Orientation-augmented rearrangement (extension; cf. the paper's ref
//! [18] on grid vs. arbitrary placement).
//!
//! ```text
//! cargo run --release --example oriented_mosaic
//! ```
//!
//! Compares the plain rearrangement against variants where each tile may
//! additionally be rotated (4 orientations) or rotated and mirrored (all
//! 8 dihedral orientations). More placement freedom can only reduce the
//! total error; the example prints by how much, and how often non-trivial
//! orientations are actually chosen.

#![forbid(unsafe_code)]

use mosaic_assign::SolverKind;
use mosaic_grid::{build_error_matrix, TileLayout, TileMetric};
use mosaic_image::io::save_pgm;
use photomosaic::optimal::optimal_rearrangement;
use photomosaic::oriented::{generate_oriented, Orientation, OrientedAlgorithm};
use photomosaic_suite::{figure2_pair, out_dir};

fn main() {
    let size = 256;
    let grid = 16;
    let (input, target) = figure2_pair(size);
    let layout = TileLayout::with_grid(size, grid).expect("divisible");

    let plain_matrix = build_error_matrix(&input, &target, layout, TileMetric::Sad).expect("valid");
    let plain = optimal_rearrangement(&plain_matrix, SolverKind::JonkerVolgenant);
    println!("plain rearrangement      : total error {}", plain.total);

    let dir = out_dir();
    for (label, allowed) in [
        ("rotations (4)", &Orientation::ROTATIONS[..]),
        ("full dihedral (8)", &Orientation::ALL[..]),
    ] {
        let result = generate_oriented(
            &input,
            &target,
            layout,
            TileMetric::Sad,
            allowed,
            OrientedAlgorithm::Optimal(SolverKind::JonkerVolgenant),
        )
        .expect("valid");
        let nontrivial = result
            .placed_orientations
            .iter()
            .filter(|&&o| o != Orientation::R0)
            .count();
        let gain = 100.0 * (plain.total - result.total_error) as f64 / plain.total as f64;
        println!(
            "{label:<25}: total error {} ({gain:.2}% better, {nontrivial}/{} tiles transformed)",
            result.total_error,
            layout.tile_count(),
        );
        let name = format!(
            "oriented_{}.pgm",
            label.split_whitespace().next().unwrap_or("x")
        );
        save_pgm(dir.join(&name), &result.image).expect("write");
    }
    println!("images written to {}", dir.display());
}
