//! Quickstart: generate one photomosaic end-to-end and write the images.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Renders the paper's Figure-2 scenario with synthetic stand-ins: a
//! portrait-like input whose tiles are rearranged to reproduce a
//! regatta-like target, using the parallel approximation algorithm on the
//! simulated device. Writes `out/quickstart_{input,target,mosaic}.pgm`.

#![forbid(unsafe_code)]

use mosaic_image::io::save_pgm;
use photomosaic::{generate, Algorithm, Backend, MosaicBuilder};
use photomosaic_suite::{figure2_pair, out_dir};

fn main() {
    let size = 512;
    let (input, target) = figure2_pair(size);

    let config = MosaicBuilder::new()
        .grid(32) // the paper's 32 x 32 tiles
        .algorithm(Algorithm::ParallelSearch)
        .backend(Backend::GpuSim { workers: None })
        .build();

    let result = generate(&input, &target, &config).expect("geometry is valid");

    let dir = out_dir();
    save_pgm(dir.join("quickstart_input.pgm"), &input).expect("write input");
    save_pgm(dir.join("quickstart_target.pgm"), &target).expect("write target");
    save_pgm(dir.join("quickstart_mosaic.pgm"), &result.image).expect("write mosaic");

    println!("{}", result.report.summary());
    println!(
        "PSNR(mosaic, target) = {:.2} dB, SSIM = {:.4}",
        mosaic_image::metrics::psnr(&result.image, &target),
        mosaic_image::metrics::ssim(&result.image, &target),
    );
    println!("images written to {}", dir.display());
}
