//! Real-time-style video mosaic (extension; see paper §III's discussion
//! of interactive/real-time photomosaic systems).
//!
//! ```text
//! cargo run --release --example video_mosaic
//! ```
//!
//! Mosaics a panning target sequence against a fixed input image. The
//! session reuses the precomputed swap schedule and warm-starts each
//! frame's search from the previous frame's assignment; the per-frame
//! swap counts show the warm start paying off.

#![forbid(unsafe_code)]

use mosaic_grid::TileMetric;
use mosaic_image::io::{save_gif_gray, save_pgm};
use mosaic_image::synth::Scene;
use mosaic_image::{Gray, Image};
use photomosaic::config::{Backend, Preprocess};
use photomosaic::video::VideoMosaicSession;
use photomosaic_suite::out_dir;

fn main() {
    let size = 256;
    let frames = 8;
    let input = Scene::Plasma.render(size, 0x51DE);
    let base_target = Scene::Regatta.render(size, 0x7A6E);

    let mut session = VideoMosaicSession::new(
        input,
        16,
        TileMetric::Sad,
        Backend::Threads(4),
        Preprocess::MatchTarget,
    )
    .expect("valid geometry");

    println!(
        "{:>5} | {:>12} | {:>6} | {:>7} | {:>9}",
        "frame", "total error", "sweeps", "swaps", "time"
    );
    println!("{}", "-".repeat(52));

    let dir = out_dir();
    let mut animation = Vec::with_capacity(frames);
    for t in 0..frames {
        // Pan the target horizontally by 4 px per frame (wrapping).
        let target = Image::from_fn(size, size, |x, y| {
            base_target.get((x + 4 * t) % size, y).unwrap_or(Gray(0))
        })
        .expect("valid dims");
        let (image, report) = session.next_frame(&target).expect("valid frame");
        println!(
            "{:>5} | {:>12} | {:>6} | {:>7} | {:>7.1}ms",
            report.frame,
            report.total_error,
            report.sweeps,
            report.swaps,
            report.wall.as_secs_f64() * 1e3,
        );
        if t == 0 || t == frames - 1 {
            save_pgm(dir.join(format!("video_frame_{t:02}.pgm")), &image).expect("write frame");
        }
        animation.push(image);
    }
    save_gif_gray(dir.join("video_mosaic.gif"), &animation, 12).expect("write gif");
    println!();
    println!(
        "{} frames generated; first/last PGMs and video_mosaic.gif written to {}",
        session.frames_generated(),
        dir.display()
    );
}
