//! Color photomosaic — the paper's §II extension ("we can easily extend
//! the proposed photomosaic method to deal with color images only by
//! changing the error function in Eq. (1)").
//!
//! ```text
//! cargo run --release --example color_mosaic
//! ```
//!
//! Demonstrates the lower-level generic API: every substrate (tiling,
//! error matrix, assignment, assembly) is generic over the pixel type, so
//! the color pipeline is the same few calls with `Rgb` images. Writes
//! `out/color_{input,target,mosaic}.ppm`.

#![forbid(unsafe_code)]

use mosaic_assign::SolverKind;
use mosaic_grid::{assemble, build_error_matrix_threaded, TileLayout, TileMetric};
use mosaic_image::io::save_ppm;
use mosaic_image::synth::{tint, Scene};
use mosaic_image::Rgb;
use photomosaic::config::Preprocess;
use photomosaic::optimal::optimal_rearrangement;
use photomosaic::preprocess::preprocess_rgb;
use photomosaic_suite::out_dir;

fn main() {
    let size = 256;
    // Two differently tinted scenes: a warm portrait input, a cool regatta
    // target.
    let input = tint(
        &Scene::Portrait.render(size, 0xC0102),
        Rgb::new(40, 16, 8),
        Rgb::new(255, 214, 170),
    );
    let target = tint(
        &Scene::Regatta.render(size, 0x5EA),
        Rgb::new(8, 24, 48),
        Rgb::new(200, 230, 255),
    );

    // Step 1: per-channel histogram matching, then tiling.
    let prepared = preprocess_rgb(&input, &target, Preprocess::MatchTarget);
    let layout = TileLayout::with_grid(size, 16).expect("divisible grid");

    // Step 2: the S x S error matrix with the RGB SAD metric.
    let matrix = build_error_matrix_threaded(&prepared, &target, layout, TileMetric::Sad, 4)
        .expect("valid geometry");

    // Step 3: exact rearrangement.
    let outcome = optimal_rearrangement(&matrix, SolverKind::JonkerVolgenant);
    let mosaic = assemble(&prepared, layout, &outcome.assignment).expect("valid assignment");

    println!(
        "color mosaic: S={}x{}, total RGB-SAD error = {}",
        layout.tiles_per_side(),
        layout.tiles_per_side(),
        outcome.total
    );

    let dir = out_dir();
    save_ppm(dir.join("color_input.ppm"), &input).expect("write input");
    save_ppm(dir.join("color_target.ppm"), &target).expect("write target");
    save_ppm(dir.join("color_mosaic.ppm"), &mosaic).expect("write mosaic");
    println!("images written to {}", dir.display());
}
