//! Hierarchical coarse-to-fine rearrangement (scalability extension).
//!
//! ```text
//! cargo run --release --example hierarchical_mosaic
//! ```
//!
//! Compares the dense exact solver against the multiresolution solver
//! (pure, and with the Algorithm-1 polish), printing the time/quality
//! trade-off. The pure hierarchy is hundreds of times faster but its
//! block constraint binds hard on histogram-matched pairs; the polish
//! repairs the quality while staying well below the O(S³) exact cost —
//! the gap widens with S (see EXPERIMENTS.md).

#![forbid(unsafe_code)]

use mosaic_assign::SolverKind;
use mosaic_grid::{build_error_matrix, TileLayout, TileMetric};
use mosaic_image::io::save_pgm;
use photomosaic::multires::{generate_hierarchical, MultiresConfig};
use photomosaic::optimal::optimal_rearrangement;
use photomosaic::preprocess::preprocess_gray;
use photomosaic::Preprocess;
use photomosaic_suite::{figure2_pair, out_dir};
use std::time::Instant;

fn main() {
    let size = 512;
    let grid = 32;
    let (input, target) = figure2_pair(size);
    let prepared = preprocess_gray(&input, &target, Preprocess::MatchTarget);
    let layout = TileLayout::with_grid(size, grid).expect("divisible");

    // Dense exact baseline (matrix + JV).
    let t0 = Instant::now();
    let matrix = build_error_matrix(&prepared, &target, layout, TileMetric::Sad).unwrap();
    let dense = optimal_rearrangement(&matrix, SolverKind::JonkerVolgenant);
    let dense_time = t0.elapsed();

    // Pure hierarchy (no S x S matrix at all).
    let mcfg = MultiresConfig {
        leaf_grid: 8,
        metric: TileMetric::Sad,
    };
    let t1 = Instant::now();
    let pure = photomosaic::multires::hierarchical_rearrangement(&prepared, &target, layout, mcfg)
        .expect("grid = leaf * 2^k");
    let pure_time = t1.elapsed();

    // Hierarchy + Algorithm-1 polish (assembles the output image too).
    let t2 = Instant::now();
    let (image, hier) =
        generate_hierarchical(&input, &target, grid, mcfg).expect("grid = leaf * 2^k");
    let polish_time = t2.elapsed();

    println!("S = {grid}x{grid}, N = {size} (histogram-matched pair)");
    println!(
        "dense exact     : total {} in {:>7.3}s",
        dense.total,
        dense_time.as_secs_f64()
    );
    println!(
        "hier (pure)     : total {} in {:>7.3}s ({:.2}% over optimal, {:.0}x faster)",
        pure.total,
        pure_time.as_secs_f64(),
        100.0 * (pure.total - dense.total) as f64 / dense.total as f64,
        dense_time.as_secs_f64() / pure_time.as_secs_f64().max(1e-9),
    );
    println!(
        "hier + polish   : total {} in {:>7.3}s ({:.2}% over optimal)",
        hier.total,
        polish_time.as_secs_f64(),
        100.0 * (hier.total - dense.total) as f64 / dense.total as f64,
    );

    let dir = out_dir();
    save_pgm(dir.join("hierarchical_mosaic.pgm"), &image).expect("write");
    println!("mosaic written to {}", dir.display());
}
