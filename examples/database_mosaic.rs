//! Classic database photomosaic (the paper's §I / Figure 1 workflow,
//! implemented as an extension).
//!
//! ```text
//! cargo run --release --example database_mosaic
//! ```
//!
//! Builds a tile library by slicing several synthetic donor scenes, then
//! reproduces a portrait target twice — once with unlimited repetition
//! and once with a per-tile usage cap — and compares the errors.

#![forbid(unsafe_code)]

use mosaic_grid::TileMetric;
use mosaic_image::io::save_pgm;
use mosaic_image::synth::Scene;
use photomosaic::database::{database_mosaic, SelectionPolicy, TileLibrary};
use photomosaic_suite::out_dir;

fn main() {
    let tile = 16;
    let donors: Vec<_> = [
        Scene::Plasma,
        Scene::Fur,
        Scene::Drapery,
        Scene::Checker,
        Scene::Regatta,
    ]
    .iter()
    .enumerate()
    .map(|(i, s)| s.render(128, 0xD0 + i as u64))
    .collect();
    let library = TileLibrary::from_donors(tile, &donors).expect("valid donors");
    println!(
        "library: {} tiles of {tile}x{tile} from {} donor scenes",
        library.len(),
        donors.len()
    );

    let target = Scene::Portrait.render(256, 0xFACE);
    let dir = out_dir();
    save_pgm(dir.join("database_target.pgm"), &target).expect("write target");

    for (name, policy) in [
        ("unlimited", SelectionPolicy::Unlimited),
        ("cap-2", SelectionPolicy::UsageCap(2)),
    ] {
        let mosaic = database_mosaic(&target, &library, TileMetric::Sad, policy).expect("feasible");
        let distinct = {
            let mut c = mosaic.choices.clone();
            c.sort_unstable();
            c.dedup();
            c.len()
        };
        println!(
            "{name:>9}: total error {:>10}, distinct tiles used {distinct}/{}",
            mosaic.total_error,
            library.len()
        );
        save_pgm(
            dir.join(format!("database_mosaic_{name}.pgm")),
            &mosaic.image,
        )
        .expect("write mosaic");
    }
    println!("images written to {}", dir.display());
}
