//! Backend comparison: serial CPU vs multi-core CPU vs simulated device.
//!
//! ```text
//! cargo run --release --example gpu_speedup
//! ```
//!
//! Times the full approximation pipeline (Step 2 + Step 3) on all three
//! backends, prints the measured speedups over the serial baseline, and
//! the analytic model's predicted Tesla K40 speedup next to them (the
//! quantity comparable to the paper's Table IV).

#![forbid(unsafe_code)]

use photomosaic::{generate, Algorithm, Backend, MosaicBuilder};
use photomosaic_suite::figure2_pair;

fn main() {
    let size = 512;
    let grid = 32;
    let (input, target) = figure2_pair(size);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!("approximation pipeline, N={size}, S={grid}x{grid}, {workers} host cores");
    println!();
    println!(
        "{:>10} | {:>10} | {:>10} | {:>10} | {:>9}",
        "backend", "step2", "step3", "total", "speedup"
    );
    println!("{}", "-".repeat(60));

    let mut serial_total = None;
    for backend in [
        Backend::Serial,
        Backend::Threads(workers),
        Backend::GpuSim { workers: None },
    ] {
        let config = MosaicBuilder::new()
            .grid(grid)
            .algorithm(Algorithm::ParallelSearch)
            .backend(backend)
            .build();
        let result = generate(&input, &target, &config).expect("valid geometry");
        let total = result.report.total_wall().as_secs_f64();
        if backend == Backend::Serial {
            serial_total = Some(total);
        }
        let speedup = serial_total.map(|s| s / total).unwrap_or(1.0);
        println!(
            "{:>10} | {:>8.1}ms | {:>8.1}ms | {:>8.1}ms | {:>8.2}x",
            backend.name(),
            result.report.step2_wall.as_secs_f64() * 1e3,
            result.report.step3_wall.as_secs_f64() * 1e3,
            total * 1e3,
            speedup,
        );
        if matches!(backend, Backend::GpuSim { .. }) {
            println!(
                "{:>10} | modeled Tesla K40 over 1-core host: {:>6.1}x (paper Table IV: 22-67x)",
                "",
                result.report.modeled_speedup()
            );
        }
    }
}
