//! Optimal matching vs. local-search approximation (§III vs §IV).
//!
//! ```text
//! cargo run --release --example optimal_vs_approx
//! ```
//!
//! Reproduces the Table-I comparison at a laptop-friendly scale: for each
//! grid size, the exact bipartite-matching rearrangement, the serial
//! local search (Algorithm 1) and the parallel local search (Algorithm 2)
//! are run on the same image pair and their total errors compared.

#![forbid(unsafe_code)]

use mosaic_assign::SolverKind;
use photomosaic::{generate, Algorithm, Backend, MosaicBuilder};
use photomosaic_suite::figure2_pair;

fn main() {
    let size = 256;
    let (input, target) = figure2_pair(size);

    println!("input/target: {size}x{size} synthetic portrait -> regatta");
    println!();
    println!(
        "{:>7} | {:>12} | {:>12} | {:>12} | {:>7} | {:>7}",
        "S", "optimal", "approx-serial", "approx-par", "gap %", "k"
    );
    println!("{}", "-".repeat(74));

    for grid in [8usize, 16, 32] {
        let run = |algorithm| {
            let config = MosaicBuilder::new()
                .grid(grid)
                .algorithm(algorithm)
                .backend(Backend::Threads(4))
                .build();
            generate(&input, &target, &config).expect("valid geometry")
        };
        let optimal = run(Algorithm::Optimal(SolverKind::JonkerVolgenant));
        let serial = run(Algorithm::LocalSearch);
        let parallel = run(Algorithm::ParallelSearch);
        let gap = 100.0 * (serial.report.total_error as f64 - optimal.report.total_error as f64)
            / optimal.report.total_error.max(1) as f64;
        println!(
            "{:>4}x{:<2} | {:>12} | {:>12} | {:>12} | {:>6.2}% | {:>7}",
            grid,
            grid,
            optimal.report.total_error,
            serial.report.total_error,
            parallel.report.total_error,
            gap,
            serial.report.sweeps,
        );
        assert!(optimal.report.total_error <= serial.report.total_error);
        assert!(optimal.report.total_error <= parallel.report.total_error);
    }

    println!();
    println!("(optimal <= both approximations on every row, as in the paper's Table I)");
}
