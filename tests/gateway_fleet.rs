//! End-to-end tests of the gateway routing tier: a real gateway in
//! front of real backend servers on ephemeral ports, result fidelity
//! against direct generation, mid-job backend death with failover,
//! flood behaviour, typed refusals, and the cache-affinity argument
//! for rendezvous routing.

use mosaic_gateway::{Fleet, Gateway, GatewayConfig, HealthPolicy, RoutePolicy};
use mosaic_image::synth::Scene;
use mosaic_service::protocol::Response;
use mosaic_service::server::ServiceConfig;
use mosaic_service::{run_load, Client, FaultPlan};
use photomosaic::{Backend, ImageSource, JobResult, JobSpec, Json, MosaicBuilder};
use std::time::Duration;

fn spec(scene: Scene, seed: u64, grid: usize) -> JobSpec {
    JobSpec {
        input: ImageSource::Synth {
            scene,
            size: 32,
            seed,
        },
        target: ImageSource::Synth {
            scene: Scene::Regatta,
            size: 32,
            seed: seed + 100,
        },
        config: MosaicBuilder::new()
            .grid(grid)
            .backend(Backend::Serial)
            .build(),
    }
}

fn decode_result(response: Response) -> JobResult {
    let Response::Result { result } = response else {
        panic!("expected a result, got {response:?}");
    };
    JobResult::from_json(&result).expect("well-formed result")
}

/// Per-backend state words from a gateway's `gateway` snapshot.
fn backend_states(client: &mut Client) -> Vec<String> {
    let Response::Gateway { gateway } = client.gateway_info().unwrap() else {
        panic!("expected a gateway snapshot");
    };
    let Some(Json::Arr(entries)) = gateway.get("backends") else {
        panic!("expected a backend array");
    };
    entries
        .iter()
        .map(|e| {
            e.get("state")
                .and_then(Json::as_str)
                .expect("state word")
                .to_string()
        })
        .collect()
}

/// A batch routed through the gateway must be byte-identical (modulo
/// timing fields) to direct generation of the same specs, and the
/// gateway's own stats/metrics must account for every routed job.
#[test]
fn gateway_batch_matches_direct_generation() {
    let fleet = Fleet::start(
        vec![
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
        ],
        GatewayConfig::default(),
    )
    .unwrap();
    let addr = fleet.gateway_addr();
    let specs = [
        spec(Scene::Portrait, 1, 4),
        spec(Scene::Fur, 2, 8),
        spec(Scene::Plasma, 3, 4),
        spec(Scene::Drapery, 4, 8),
    ];

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for spec in &specs {
            handles.push(scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                decode_result(client.submit(spec).unwrap())
            }));
        }
        for (handle, spec) in handles.into_iter().zip(&specs) {
            let remote = handle.join().expect("client thread panicked");
            let (input, target) = spec.resolve().unwrap();
            let direct = photomosaic::generate(&input, &target, &spec.config).unwrap();
            assert_eq!(remote.image, direct.image);
            assert_eq!(remote.assignment, direct.assignment);
            assert_eq!(
                remote.report.get("total_error").and_then(Json::as_u64),
                Some(direct.report.total_error)
            );
        }
    });

    let mut client = Client::connect(addr).unwrap();
    let Response::Stats { stats } = client.stats().unwrap() else {
        panic!("expected stats");
    };
    let jobs = stats.get("jobs").unwrap();
    assert_eq!(jobs.get("routed").and_then(Json::as_u64), Some(4));
    assert_eq!(jobs.get("rejected").and_then(Json::as_u64), Some(0));
    let backends = stats.get("backends").unwrap();
    assert_eq!(backends.get("healthy").and_then(Json::as_u64), Some(2));
    let route = stats.get("route_us").unwrap();
    assert_eq!(route.get("count").and_then(Json::as_u64), Some(4));

    let Response::Metrics { text } = client.metrics().unwrap() else {
        panic!("expected metrics text");
    };
    assert!(text.contains("# TYPE gateway_jobs_routed_total counter"));
    assert!(text.contains("gateway_jobs_routed_total 4\n"));
    assert!(text.contains("gateway_backends_healthy 2\n"));
    assert!(text.contains("# TYPE gateway_route_us histogram"));

    fleet.join();
}

/// Kill one backend mid-job (crash fault: connection severed, listener
/// closed, connects refused — process death as seen from the network).
/// The gateway must fail the job over to the next rendezvous choice,
/// lose zero accepted jobs, and eventually mark the backend `down`.
#[test]
fn fault_killed_backend_fails_over_with_zero_lost_jobs() {
    let plan = FaultPlan::crash_first_jobs(1);
    let fleet = Fleet::start(
        vec![
            ServiceConfig {
                workers: 2,
                faults: plan.clone(),
                ..ServiceConfig::default()
            },
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
        ],
        GatewayConfig {
            probe_interval_ms: 50,
            retry_after_ms: 5,
            ..GatewayConfig::default()
        },
    )
    .unwrap();

    // Distinct seeds spread keys over both backends, so the faulted one
    // sees traffic with overwhelming probability (2^-23 to miss).
    let specs: Vec<JobSpec> = (0..24).map(|i| spec(Scene::Plasma, 200 + i, 4)).collect();
    let summary = run_load(fleet.gateway_addr(), &specs, 3).unwrap();
    assert_eq!(summary.completed, 24, "{summary:?}");
    assert_eq!(summary.failed, 0, "accepted jobs were lost: {summary:?}");
    assert_eq!(
        plan.crashes_remaining(),
        0,
        "the crash fault never fired — no job reached the faulted backend"
    );

    // The killed backend refuses connects, so traffic plus probes walk
    // it to Down within a few failure counts.
    let mut client = Client::connect(fleet.gateway_addr()).unwrap();
    let mut waited = Duration::ZERO;
    loop {
        let states = backend_states(&mut client);
        assert_eq!(states.len(), 2);
        if states.contains(&"down".to_string()) {
            break;
        }
        assert!(
            waited < Duration::from_secs(10),
            "killed backend never marked down: {states:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
        waited += Duration::from_millis(20);
    }
    // The survivor keeps serving through the same gateway.
    decode_result(client.submit(&spec(Scene::Checker, 900, 4)).unwrap());
    fleet.join();
}

/// A flood of jobs into saturated backends draws the standard
/// `rejected` backpressure shape through the gateway, retrying clients
/// complete every job, and the fleet recovers to serve new work.
#[test]
fn fault_flood_is_rejected_typed_then_recovers() {
    let backend = || ServiceConfig {
        workers: 1,
        queue_capacity: 1,
        retry_after_ms: 5,
        ..ServiceConfig::default()
    };
    let fleet = Fleet::start(
        vec![backend(), backend()],
        GatewayConfig {
            retry_after_ms: 5,
            ..GatewayConfig::default()
        },
    )
    .unwrap();
    let addr = fleet.gateway_addr();

    let barrier = std::sync::Barrier::new(8);
    let rejected: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    barrier.wait();
                    // Distinct seeds defeat both matrix caches, so the
                    // one-slot queues actually back up.
                    let job = spec(Scene::Plasma, 300 + i, 8);
                    let (response, rejections) = client.submit_with_retry(&job, 200).unwrap();
                    match response {
                        Response::Result { .. } => rejections,
                        other => panic!("job starved: {other:?}"),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .sum()
    });
    assert!(
        rejected > 0,
        "8 simultaneous jobs into two 1-slot queues never saw backpressure"
    );

    // Recovery: the fleet is idle again and serves immediately.
    let mut client = Client::connect(addr).unwrap();
    decode_result(client.submit(&spec(Scene::Fur, 950, 4)).unwrap());
    let mut states = backend_states(&mut client);
    states.sort();
    assert_eq!(states, ["healthy", "healthy"]);
    fleet.join();
}

/// With every backend dead the gateway answers the typed routing
/// refusals: `backend_down` while it is still discovering the deaths,
/// `no_backend_available` once nothing is routable and even the
/// last-resort attempt fails.
#[test]
fn fault_dead_fleet_draws_typed_routing_refusals() {
    // Ports 1 and 2 are never listening; disable probes so only traffic
    // drives the health machine and the sequence is deterministic.
    let gateway = Gateway::start(GatewayConfig {
        backends: vec!["127.0.0.1:1".to_string(), "127.0.0.1:2".to_string()],
        probe_interval_ms: 0,
        backend_timeout_ms: 1_000,
        retry_after_ms: 9,
        health: HealthPolicy {
            suspect_after: 1,
            down_after: 1,
        },
        ..GatewayConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(gateway.local_addr()).unwrap();
    let job = spec(Scene::Portrait, 400, 4);

    // Both backends start Healthy: the job burns both hops on dead
    // connects and reports the last casualty.
    match client.submit(&job).unwrap() {
        Response::BackendDown {
            backend,
            retry_after_ms,
        } => {
            assert!(backend.starts_with("127.0.0.1:"), "{backend}");
            assert_eq!(retry_after_ms, 9);
        }
        other => panic!("expected backend_down, got {other:?}"),
    }

    // Now both are Down: nothing is routable, the last-resort attempt
    // also dies, and the whole-fleet refusal comes back.
    match client.submit(&job).unwrap() {
        Response::NoBackendAvailable { retry_after_ms } => assert_eq!(retry_after_ms, 9),
        other => panic!("expected no_backend_available, got {other:?}"),
    }
    let mut states = backend_states(&mut client);
    states.sort();
    assert_eq!(states, ["down", "down"]);

    gateway.shutdown();
    gateway.join();
}

/// The point of rendezvous routing: on repeated specs, pinning each
/// spec to one backend yields a strictly higher aggregate matrix-cache
/// hit rate than scattering the same work round-robin.
#[test]
fn rendezvous_routing_beats_round_robin_on_cache_affinity() {
    let run = |policy: RoutePolicy| {
        let fleet = Fleet::start(
            vec![ServiceConfig::default(), ServiceConfig::default()],
            GatewayConfig {
                policy,
                ..GatewayConfig::default()
            },
        )
        .unwrap();
        // 3 distinct specs, 24 submissions, one serial lane so the
        // round-robin arm alternates backends deterministically.
        let specs: Vec<JobSpec> = (0..24)
            .map(|i| spec(Scene::Checker, 500 + i % 3, 4))
            .collect();
        let summary = run_load(fleet.gateway_addr(), &specs, 1).unwrap();
        assert_eq!(summary.completed, 24, "{policy:?}: {summary:?}");
        let cache = fleet.aggregate_cache_stats();
        assert_eq!(cache.hits + cache.misses, 24, "{policy:?}: {cache:?}");
        fleet.join();
        cache
    };

    let rendezvous = run(RoutePolicy::Rendezvous);
    let round_robin = run(RoutePolicy::RoundRobin);

    // Rendezvous: each spec lives on exactly one backend — one cold
    // miss per distinct spec, 21 hits. Round-robin alternates, so every
    // spec goes cold on both backends: 6 misses, 18 hits.
    assert_eq!(rendezvous.misses, 3, "{rendezvous:?}");
    assert!(
        rendezvous.hits > round_robin.hits,
        "affinity advantage vanished: {rendezvous:?} vs {round_robin:?}"
    );
}
