//! The tile-library acceptance workload: ingest a thousand-plus
//! generated tiles into a content-addressed store (re-ingest must be a
//! no-op by hash), then run a `library` job end-to-end twice — through
//! the CLI entry point and through the service wire protocol — and check
//! that the clustered top-k pruning actually pruned while the
//! rectangular sparse solve still produced an injective mosaic.

use mosaic_image::io::save_pgm;
use mosaic_image::synth::Scene;
use mosaic_service::protocol::Response;
use mosaic_service::{Client, Server, ServiceConfig};
use mosaic_tilelib::{LibraryJobSpec, LibraryParams, TileStore};
use photomosaic::{ImageSource, JobResult, Json};
use std::path::{Path, PathBuf};

const TILE: usize = 8;
const GRID: usize = 16; // 256 cells, well under the 1000-tile library

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("mosaic_tilelib_library")
        .join(format!("{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_cli(args: &[&str]) -> Result<String, String> {
    let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    mosaic_cli::run(&argv).map_err(|e| e.to_string())
}

/// Build a store of at least `count` distinct tiles by ingesting
/// generated PGM files, and prove the second pass is a no-op by hash.
fn seeded_store(dir: &Path, count: usize) -> PathBuf {
    let photos = dir.join("photos");
    std::fs::create_dir_all(&photos).unwrap();
    let mut written = 0usize;
    let mut seed = 0u64;
    let mut digests = std::collections::HashSet::new();
    while written < count {
        let scene = Scene::ALL[(seed % Scene::ALL.len() as u64) as usize];
        let tile = scene.render(TILE, seed);
        // Only distinct content counts toward the library size.
        if digests.insert(TileStore::tile_digest(&tile)) {
            save_pgm(photos.join(format!("tile{seed:05}.pgm")), &tile).unwrap();
            written += 1;
        }
        seed += 1;
    }

    let store_root = dir.join("store");
    let msg = run_cli(&[
        "ingest",
        "--store",
        store_root.to_str().unwrap(),
        "--from",
        photos.to_str().unwrap(),
        "--tile",
        &TILE.to_string(),
    ])
    .unwrap();
    assert!(
        msg.contains(&format!("ingested {count} new tiles")),
        "{msg}"
    );

    // Re-ingest: identical content, zero new objects.
    let msg = run_cli(&[
        "ingest",
        "--store",
        store_root.to_str().unwrap(),
        "--from",
        photos.to_str().unwrap(),
        "--tile",
        &TILE.to_string(),
    ])
    .unwrap();
    assert!(msg.contains("ingested 0 new tiles"), "{msg}");
    assert!(
        msg.contains(&format!("{count} duplicates")),
        "every file must dedup by hash: {msg}"
    );

    let store = TileStore::open(&store_root).unwrap();
    assert_eq!(store.len().unwrap(), count);
    store_root
}

#[test]
fn thousand_tile_library_end_to_end() {
    let dir = workdir("e2e");
    let store_root = seeded_store(&dir, 1000);

    // CLI path: generate --library composes the target from the store.
    let target = dir.join("target.pgm");
    run_cli(&[
        "synth",
        "--scene",
        "portrait",
        "--size",
        "128",
        "--seed",
        "3",
        "--out",
        target.to_str().unwrap(),
    ])
    .unwrap();
    let out = dir.join("mosaic.pgm");
    let msg = run_cli(&[
        "generate",
        "--library",
        store_root.to_str().unwrap(),
        "--target",
        target.to_str().unwrap(),
        "--out",
        out.to_str().unwrap(),
        "--grid",
        &GRID.to_string(),
    ])
    .unwrap();
    assert!(msg.contains("256 cells from 1000 tiles"), "{msg}");
    let info = run_cli(&["info", out.to_str().unwrap()]).unwrap();
    assert!(info.contains("128x128"), "{info}");

    // Service path: the same store, addressed by path over the wire.
    let server = Server::start(ServiceConfig::default()).unwrap();
    let spec = LibraryJobSpec {
        target: ImageSource::Synth {
            scene: Scene::Portrait,
            size: 128,
            seed: 3,
        },
        store: store_root.to_str().unwrap().to_string(),
        params: LibraryParams {
            grid: GRID,
            ..LibraryParams::default()
        },
    };
    let mut client = Client::connect(server.local_addr()).unwrap();
    let Response::Result { result } = client.submit_library(&spec).unwrap() else {
        panic!("library job failed over the wire");
    };
    let result = JobResult::from_json(&result).unwrap();
    server.shutdown();
    server.join();

    // An injective assignment over the library...
    assert_eq!(result.image.dimensions(), (128, 128));
    assert_eq!(result.assignment.len(), GRID * GRID);
    let mut seen = result.assignment.clone();
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len(), GRID * GRID, "tiles must be used at most once");

    // ...that was actually pruned: the sparse instance must hold far
    // fewer entries than the 256 x 1000 dense matrix.
    let count = |key: &str| result.report.get(key).and_then(Json::as_u64).unwrap();
    assert_eq!(count("cells"), 256);
    assert_eq!(count("tiles"), 1000);
    let nnz = count("sparse_nnz");
    assert!(
        nnz < 256 * 1000 / 2,
        "pruning left {nnz} of 256000 candidates — not pruned"
    );
    assert!(count("total_error") > 0);
}
