//! Cross-crate integration: substrates composed directly, bypassing the
//! pipeline facade.

use mosaic_assign::{CostMatrix, HungarianSolver, JonkerVolgenantSolver, Solver};
use mosaic_edgecolor::{is_exact_cover, is_proper_coloring, SwapSchedule};
use mosaic_gpu::{DeviceSpec, GpuSim};
use mosaic_grid::{assemble, build_error_matrix, TileLayout, TileMetric};
use mosaic_image::{metrics, synth};
use photomosaic::errors::gpu_error_matrix;
use photomosaic::local_search::local_search;
use photomosaic::parallel_search::{parallel_search_gpu, parallel_search_reference};

#[test]
fn gpu_error_matrix_agrees_with_grid_serial_at_paper_small_scale() {
    // N = 128, S = 16x16 (the paper's smallest grid, scaled-down image).
    let input = synth::portrait(128, 11);
    let target = synth::regatta(128, 12);
    let layout = TileLayout::with_grid(128, 16).unwrap();
    let serial = build_error_matrix(&input, &target, layout, TileMetric::Sad).unwrap();
    let sim = GpuSim::new(DeviceSpec::tesla_k40());
    let gpu = gpu_error_matrix(&sim, &input, &target, layout, TileMetric::Sad).unwrap();
    assert_eq!(serial, gpu);
    // One launch, S blocks.
    let stats = sim.stats();
    assert_eq!(stats.launches, 1);
    assert_eq!(stats.blocks, 256);
}

#[test]
fn solver_on_real_error_matrix_beats_local_search_or_ties() {
    let input = synth::fur(64, 5);
    let target = synth::drapery(64, 6);
    let layout = TileLayout::with_grid(64, 8).unwrap();
    let matrix = build_error_matrix(&input, &target, layout, TileMetric::Sad).unwrap();
    let cost = CostMatrix::from_vec(matrix.size(), matrix.as_slice().to_vec());
    let exact = JonkerVolgenantSolver.solve(&cost);
    let hungarian = HungarianSolver.solve(&cost);
    assert_eq!(exact.total(), hungarian.total());
    let approx = local_search(&matrix);
    assert!(exact.total() <= approx.total);
}

#[test]
fn assembled_mosaic_error_equals_solver_total() {
    let input = synth::plasma(64, 9, 3);
    let target = synth::checker(64, 8, 4);
    let layout = TileLayout::with_grid(64, 8).unwrap();
    let matrix = build_error_matrix(&input, &target, layout, TileMetric::Sad).unwrap();
    let cost = CostMatrix::from_vec(matrix.size(), matrix.as_slice().to_vec());
    let solution = JonkerVolgenantSolver.solve(&cost);
    let assignment = solution.col_to_row();
    let mosaic = assemble(&input, layout, &assignment).unwrap();
    assert_eq!(metrics::sad(&mosaic, &target), solution.total());
}

#[test]
fn schedule_used_by_search_is_a_valid_coloring() {
    let s = 144; // 12x12 tiles
    let sched = SwapSchedule::for_tiles(s);
    assert!(is_proper_coloring(sched.groups(), s));
    assert!(is_exact_cover(sched.groups(), s));
}

#[test]
fn gpu_search_on_real_matrix_matches_reference_and_reports_launches() {
    let input = synth::portrait(64, 2);
    let target = synth::fur(64, 3);
    let layout = TileLayout::with_grid(64, 8).unwrap();
    let matrix = build_error_matrix(&input, &target, layout, TileMetric::Sad).unwrap();
    let sched = SwapSchedule::for_tiles(matrix.size());
    let sim = GpuSim::with_workers(DeviceSpec::tesla_k40(), 4);
    let gpu = parallel_search_gpu(&sim, &matrix, &sched);
    let reference = parallel_search_reference(&matrix, &sched);
    assert_eq!(gpu, reference);
    // §V: one kernel launch per occupied group per sweep.
    let occupied = sched.occupied_groups().count();
    assert_eq!(gpu.launches, gpu.outcome.sweeps * occupied);
    assert_eq!(sim.stats().launches, gpu.launches);
}

#[test]
fn metric_choice_changes_matrix_but_all_stay_consistent() {
    let input = synth::drapery(48, 8);
    let target = synth::portrait(48, 9);
    let layout = TileLayout::with_grid(48, 6).unwrap();
    for metric in TileMetric::ALL {
        let matrix = build_error_matrix(&input, &target, layout, metric).unwrap();
        let out = local_search(&matrix);
        assert_eq!(out.total, matrix.assignment_total(&out.assignment));
    }
    // SAD and MeanAbs matrices must actually differ on textured tiles.
    let sad = build_error_matrix(&input, &target, layout, TileMetric::Sad).unwrap();
    let mean = build_error_matrix(&input, &target, layout, TileMetric::MeanAbs).unwrap();
    assert_ne!(sad, mean);
}

#[test]
fn pnm_roundtrip_preserves_pipeline_results() {
    // Write a generated mosaic to PGM bytes and read it back unchanged.
    let (input, target) = (synth::portrait(64, 1), synth::regatta(64, 2));
    let config = photomosaic::MosaicBuilder::new()
        .grid(8)
        .backend(photomosaic::Backend::Serial)
        .build();
    let result = photomosaic::generate(&input, &target, &config).unwrap();
    let bytes = mosaic_image::io::write_pgm(&result.image);
    let back = mosaic_image::io::read_pgm(&bytes).unwrap();
    assert_eq!(back, result.image);
}
