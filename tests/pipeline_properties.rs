//! Property-based tests over the full pipeline on random images, driven
//! by the deterministic [`mosaic_image::testutil`] PRNG (ported from the
//! former `proptest` suite; every case reproduces from the printed seed).

use mosaic_image::testutil::{gray_image, XorShift};
use mosaic_image::{metrics, Gray, Image};
use photomosaic::{generate, Algorithm, Backend, MosaicBuilder, Preprocess};

/// Random square images whose size is `grid * tile` for small factors,
/// generated as a same-sized pair.
fn arb_pair(rng: &mut XorShift) -> (Image<Gray>, Image<Gray>, usize) {
    let grid = rng.range(2, 4);
    let tile = rng.range(3, 6);
    let n = grid * tile;
    (gray_image(rng, n, n), gray_image(rng, n, n), grid)
}

#[test]
fn pipeline_is_deterministic() {
    for seed in 0..12 {
        let mut rng = XorShift::new(seed);
        let (input, target, grid) = arb_pair(&mut rng);
        let config = MosaicBuilder::new()
            .grid(grid)
            .backend(Backend::Serial)
            .build();
        let a = generate(&input, &target, &config).unwrap();
        let b = generate(&input, &target, &config).unwrap();
        assert_eq!(a.image, b.image, "seed {seed}");
        assert_eq!(a.assignment, b.assignment, "seed {seed}");
        assert_eq!(a.report.total_error, b.report.total_error, "seed {seed}");
    }
}

#[test]
fn reported_total_equals_assembled_sad() {
    for seed in 0..12 {
        let mut rng = XorShift::new(seed);
        let (input, target, grid) = arb_pair(&mut rng);
        for algorithm in [
            Algorithm::Optimal(mosaic_assign::SolverKind::JonkerVolgenant),
            Algorithm::LocalSearch,
            Algorithm::ParallelSearch,
        ] {
            let config = MosaicBuilder::new()
                .grid(grid)
                .algorithm(algorithm)
                .backend(Backend::Serial)
                .build();
            let result = generate(&input, &target, &config).unwrap();
            assert_eq!(
                result.report.total_error,
                metrics::sad(&result.image, &target),
                "seed {seed}"
            );
        }
    }
}

#[test]
fn optimal_bounds_every_other_algorithm() {
    for seed in 0..8 {
        let mut rng = XorShift::new(seed);
        let (input, target, grid) = arb_pair(&mut rng);
        let run = |algorithm| {
            let config = MosaicBuilder::new()
                .grid(grid)
                .algorithm(algorithm)
                .backend(Backend::Serial)
                .build();
            generate(&input, &target, &config)
                .unwrap()
                .report
                .total_error
        };
        let optimal = run(Algorithm::Optimal(mosaic_assign::SolverKind::Hungarian));
        let sparse = run(Algorithm::SparseMatch { k: 4 });
        let anneal = run(Algorithm::Anneal { seed: 1, sweeps: 2 });
        let blossom = run(Algorithm::Optimal(mosaic_assign::SolverKind::Blossom));
        assert!(run(Algorithm::LocalSearch) >= optimal, "seed {seed}");
        assert!(run(Algorithm::ParallelSearch) >= optimal, "seed {seed}");
        assert!(run(Algorithm::Greedy) >= optimal, "seed {seed}");
        assert!(sparse >= optimal, "seed {seed}");
        assert!(anneal >= optimal, "seed {seed}");
        assert_eq!(blossom, optimal, "seed {seed}");
    }
}

#[test]
fn mosaic_without_preprocess_is_a_tile_permutation() {
    for seed in 0..12 {
        let mut rng = XorShift::new(seed);
        let (input, target, grid) = arb_pair(&mut rng);
        let config = MosaicBuilder::new()
            .grid(grid)
            .backend(Backend::Serial)
            .preprocess(Preprocess::None)
            .build();
        let result = generate(&input, &target, &config).unwrap();
        let mut a: Vec<u8> = input.pixels().iter().map(|p| p.0).collect();
        let mut b: Vec<u8> = result.image.pixels().iter().map(|p| p.0).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "seed {seed}");
    }
}

#[test]
fn rearranged_never_worse_than_unrearranged() {
    for seed in 0..12 {
        let mut rng = XorShift::new(seed);
        let (input, target, grid) = arb_pair(&mut rng);
        let config = MosaicBuilder::new()
            .grid(grid)
            .backend(Backend::Serial)
            .preprocess(Preprocess::None)
            .build();
        let result = generate(&input, &target, &config).unwrap();
        assert!(
            result.report.total_error <= metrics::sad(&input, &target),
            "seed {seed}"
        );
    }
}

#[test]
fn backends_are_bit_identical() {
    for seed in 0..8 {
        let mut rng = XorShift::new(seed);
        let (input, target, grid) = arb_pair(&mut rng);
        let mk = |backend| {
            MosaicBuilder::new()
                .grid(grid)
                .algorithm(Algorithm::ParallelSearch)
                .backend(backend)
                .build()
        };
        let serial = generate(&input, &target, &mk(Backend::Serial)).unwrap();
        let threads = generate(&input, &target, &mk(Backend::Threads(2))).unwrap();
        let gpu = generate(&input, &target, &mk(Backend::GpuSim { workers: Some(2) })).unwrap();
        assert_eq!(&serial.image, &threads.image, "seed {seed}");
        assert_eq!(&serial.image, &gpu.image, "seed {seed}");
    }
}
