//! Property-based tests over the full pipeline on random images.

use mosaic_image::{metrics, Gray, Image};
use photomosaic::{generate, Algorithm, Backend, MosaicBuilder, Preprocess};
use proptest::prelude::*;

/// Random square images whose size is `grid * tile` for small factors,
/// generated as a same-sized pair.
fn arb_pair() -> impl Strategy<Value = (Image<Gray>, Image<Gray>, usize)> {
    (2usize..=4, 3usize..=6).prop_flat_map(|(grid, tile)| {
        let n = grid * tile;
        (
            proptest::collection::vec(any::<u8>(), n * n),
            proptest::collection::vec(any::<u8>(), n * n),
        )
            .prop_map(move |(a, b)| {
                (
                    Image::from_vec(n, n, a.into_iter().map(Gray).collect()).unwrap(),
                    Image::from_vec(n, n, b.into_iter().map(Gray).collect()).unwrap(),
                    grid,
                )
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pipeline_is_deterministic((input, target, grid) in arb_pair()) {
        let config = MosaicBuilder::new()
            .grid(grid)
            .backend(Backend::Serial)
            .build();
        let a = generate(&input, &target, &config).unwrap();
        let b = generate(&input, &target, &config).unwrap();
        prop_assert_eq!(a.image, b.image);
        prop_assert_eq!(a.assignment, b.assignment);
        prop_assert_eq!(a.report.total_error, b.report.total_error);
    }

    #[test]
    fn reported_total_equals_assembled_sad((input, target, grid) in arb_pair()) {
        for algorithm in [
            Algorithm::Optimal(mosaic_assign::SolverKind::JonkerVolgenant),
            Algorithm::LocalSearch,
            Algorithm::ParallelSearch,
        ] {
            let config = MosaicBuilder::new()
                .grid(grid)
                .algorithm(algorithm)
                .backend(Backend::Serial)
                .build();
            let result = generate(&input, &target, &config).unwrap();
            prop_assert_eq!(
                result.report.total_error,
                metrics::sad(&result.image, &target)
            );
        }
    }

    #[test]
    fn optimal_bounds_every_other_algorithm((input, target, grid) in arb_pair()) {
        let run = |algorithm| {
            let config = MosaicBuilder::new()
                .grid(grid)
                .algorithm(algorithm)
                .backend(Backend::Serial)
                .build();
            generate(&input, &target, &config).unwrap().report.total_error
        };
        let optimal = run(Algorithm::Optimal(mosaic_assign::SolverKind::Hungarian));
        let sparse = run(Algorithm::SparseMatch { k: 4 });
        let anneal = run(Algorithm::Anneal { seed: 1, sweeps: 2 });
        let blossom = run(Algorithm::Optimal(mosaic_assign::SolverKind::Blossom));
        prop_assert!(run(Algorithm::LocalSearch) >= optimal);
        prop_assert!(run(Algorithm::ParallelSearch) >= optimal);
        prop_assert!(run(Algorithm::Greedy) >= optimal);
        prop_assert!(sparse >= optimal);
        prop_assert!(anneal >= optimal);
        prop_assert_eq!(blossom, optimal);
    }

    #[test]
    fn mosaic_without_preprocess_is_a_tile_permutation((input, target, grid) in arb_pair()) {
        let config = MosaicBuilder::new()
            .grid(grid)
            .backend(Backend::Serial)
            .preprocess(Preprocess::None)
            .build();
        let result = generate(&input, &target, &config).unwrap();
        let mut a: Vec<u8> = input.pixels().iter().map(|p| p.0).collect();
        let mut b: Vec<u8> = result.image.pixels().iter().map(|p| p.0).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn rearranged_never_worse_than_unrearranged((input, target, grid) in arb_pair()) {
        let config = MosaicBuilder::new()
            .grid(grid)
            .backend(Backend::Serial)
            .preprocess(Preprocess::None)
            .build();
        let result = generate(&input, &target, &config).unwrap();
        prop_assert!(result.report.total_error <= metrics::sad(&input, &target));
    }

    #[test]
    fn backends_are_bit_identical((input, target, grid) in arb_pair()) {
        let mk = |backend| {
            MosaicBuilder::new()
                .grid(grid)
                .algorithm(Algorithm::ParallelSearch)
                .backend(backend)
                .build()
        };
        let serial = generate(&input, &target, &mk(Backend::Serial)).unwrap();
        let threads = generate(&input, &target, &mk(Backend::Threads(2))).unwrap();
        let gpu = generate(
            &input,
            &target,
            &mk(Backend::GpuSim { workers: Some(2) }),
        )
        .unwrap();
        prop_assert_eq!(&serial.image, &threads.image);
        prop_assert_eq!(&serial.image, &gpu.image);
    }
}
