//! Integration tests driving the `mosaic` CLI end-to-end (library entry
//! point, no subprocess): synth → generate → compare workflows on real
//! files.

use std::path::PathBuf;

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("mosaic_cli_workflows").join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(args: &[&str]) -> Result<String, String> {
    let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    mosaic_cli::run(&argv).map_err(|e| e.to_string())
}

#[test]
fn synth_generate_compare_workflow() {
    let dir = workdir("full");
    let input = dir.join("input.pgm");
    let target = dir.join("target.pgm");
    let out = dir.join("mosaic.pgm");

    run(&[
        "synth",
        "--scene",
        "portrait",
        "--size",
        "64",
        "--seed",
        "1",
        "--out",
        input.to_str().unwrap(),
    ])
    .unwrap();
    run(&[
        "synth",
        "--scene",
        "regatta",
        "--size",
        "64",
        "--seed",
        "2",
        "--out",
        target.to_str().unwrap(),
    ])
    .unwrap();

    let msg = run(&[
        "generate",
        "--input",
        input.to_str().unwrap(),
        "--target",
        target.to_str().unwrap(),
        "--out",
        out.to_str().unwrap(),
        "--grid",
        "8",
        "--backend",
        "serial",
    ])
    .unwrap();
    assert!(msg.contains("error="), "summary missing: {msg}");
    assert!(out.exists());

    // The mosaic must be closer to the target than the raw input is.
    let mosaic_vs_target =
        run(&["compare", out.to_str().unwrap(), target.to_str().unwrap()]).unwrap();
    let input_vs_target =
        run(&["compare", input.to_str().unwrap(), target.to_str().unwrap()]).unwrap();
    let sad = |s: &str| -> u64 {
        s.lines()
            .find(|l| l.starts_with("SAD"))
            .and_then(|l| l.split('=').nth(1))
            .unwrap()
            .trim()
            .parse()
            .unwrap()
    };
    assert!(sad(&mosaic_vs_target) < sad(&input_vs_target));
}

#[test]
fn every_algorithm_flag_works_end_to_end() {
    let dir = workdir("algorithms");
    let input = dir.join("in.pgm");
    let target = dir.join("tg.pgm");
    run(&[
        "synth",
        "--scene",
        "plasma",
        "--size",
        "32",
        "--out",
        input.to_str().unwrap(),
    ])
    .unwrap();
    run(&[
        "synth",
        "--scene",
        "fur",
        "--size",
        "32",
        "--out",
        target.to_str().unwrap(),
    ])
    .unwrap();
    for algorithm in ["optimal", "local", "parallel", "greedy", "anneal"] {
        let out = dir.join(format!("{algorithm}.pgm"));
        run(&[
            "generate",
            "--input",
            input.to_str().unwrap(),
            "--target",
            target.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
            "--grid",
            "4",
            "--algorithm",
            algorithm,
            "--backend",
            "serial",
        ])
        .unwrap_or_else(|e| panic!("{algorithm}: {e}"));
        assert!(out.exists(), "{algorithm} produced no file");
    }
}

#[test]
fn database_workflow() {
    let dir = workdir("database");
    let donor = dir.join("donor.pgm");
    let target = dir.join("target.pgm");
    let out = dir.join("db.pgm");
    run(&[
        "synth",
        "--scene",
        "drapery",
        "--size",
        "64",
        "--out",
        donor.to_str().unwrap(),
    ])
    .unwrap();
    run(&[
        "synth",
        "--scene",
        "portrait",
        "--size",
        "64",
        "--out",
        target.to_str().unwrap(),
    ])
    .unwrap();
    let msg = run(&[
        "database",
        "--target",
        target.to_str().unwrap(),
        "--donors",
        donor.to_str().unwrap(),
        "--tile",
        "8",
        "--out",
        out.to_str().unwrap(),
    ])
    .unwrap();
    assert!(msg.contains("library 64 tiles"));
    let info = run(&["info", out.to_str().unwrap()]).unwrap();
    assert!(info.contains("64x64"));
}

#[test]
fn geometry_errors_surface_cleanly() {
    let dir = workdir("errors");
    let small = dir.join("small.pgm");
    let big = dir.join("big.pgm");
    run(&[
        "synth",
        "--scene",
        "fur",
        "--size",
        "32",
        "--out",
        small.to_str().unwrap(),
    ])
    .unwrap();
    run(&[
        "synth",
        "--scene",
        "fur",
        "--size",
        "64",
        "--out",
        big.to_str().unwrap(),
    ])
    .unwrap();
    let err = run(&[
        "generate",
        "--input",
        small.to_str().unwrap(),
        "--target",
        big.to_str().unwrap(),
        "--out",
        dir.join("x.pgm").to_str().unwrap(),
        "--backend",
        "serial",
    ])
    .unwrap_err();
    assert!(err.contains("layout error"), "got: {err}");
    // Grid that does not divide the image.
    let err = run(&[
        "generate",
        "--input",
        small.to_str().unwrap(),
        "--target",
        small.to_str().unwrap(),
        "--out",
        dir.join("x.pgm").to_str().unwrap(),
        "--grid",
        "5",
        "--backend",
        "serial",
    ])
    .unwrap_err();
    assert!(err.contains("layout error"), "got: {err}");
}

#[test]
fn help_documents_every_subcommand() {
    let usage = run(&["help"]).unwrap();
    for word in [
        "generate",
        "--library",
        "ingest",
        "database",
        "synth",
        "serve",
        "gateway",
        "fleet",
        "submit",
        "compare",
        "info",
        "--clusters",
        "--top-clusters",
        "--feature-grid",
        "--front-end",
    ] {
        assert!(usage.contains(word), "usage lost {word:?}");
    }
    // An argument error points back at the same usage text.
    assert_eq!(run(&["--help"]).unwrap(), usage);
}

#[test]
fn ingest_library_workflow() {
    let dir = workdir("library");
    let photos = dir.join("photos");
    std::fs::create_dir_all(&photos).unwrap();
    for (i, scene) in ["portrait", "regatta", "fur", "drapery", "plasma", "checker"]
        .iter()
        .cycle()
        .take(24)
        .enumerate()
    {
        run(&[
            "synth",
            "--scene",
            scene,
            "--size",
            "8",
            "--seed",
            &i.to_string(),
            "--out",
            photos.join(format!("p{i}.pgm")).to_str().unwrap(),
        ])
        .unwrap();
    }
    let store = dir.join("store");
    let _ = std::fs::remove_dir_all(&store);
    let msg = run(&[
        "ingest",
        "--store",
        store.to_str().unwrap(),
        "--from",
        photos.to_str().unwrap(),
        "--tile",
        "8",
    ])
    .unwrap();
    assert!(msg.contains("new tiles"), "{msg}");

    // Re-ingest: every file dedups by hash. Adopting the store with the
    // default tile edge (16) must fail loudly instead of mixing sizes.
    let err = run(&[
        "ingest",
        "--store",
        store.to_str().unwrap(),
        "--from",
        photos.to_str().unwrap(),
    ])
    .unwrap_err();
    assert!(err.contains("tile size"), "{err}");
    let msg = run(&[
        "ingest",
        "--store",
        store.to_str().unwrap(),
        "--from",
        photos.to_str().unwrap(),
        "--tile",
        "8",
    ])
    .unwrap();
    assert!(msg.contains("ingested 0 new tiles"), "{msg}");

    let target = dir.join("target.pgm");
    run(&[
        "synth",
        "--scene",
        "portrait",
        "--size",
        "32",
        "--out",
        target.to_str().unwrap(),
    ])
    .unwrap();
    let out = dir.join("mosaic.pgm");
    let msg = run(&[
        "generate",
        "--library",
        store.to_str().unwrap(),
        "--target",
        target.to_str().unwrap(),
        "--out",
        out.to_str().unwrap(),
        "--grid",
        "4",
        "--clusters",
        "6",
        "--top-clusters",
        "2",
    ])
    .unwrap();
    assert!(msg.contains("16 cells"), "{msg}");
    let info = run(&["info", out.to_str().unwrap()]).unwrap();
    assert!(info.contains("32x32"), "{info}");
}
