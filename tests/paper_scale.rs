//! Paper-scale validation (N = 512, S up to 64×64). Several seconds to a
//! minute per test, so ignored by default:
//!
//! ```text
//! cargo test --release --test paper_scale -- --ignored
//! ```

use mosaic_assign::SolverKind;
use photomosaic::{generate, Algorithm, Backend, MosaicBuilder};
use photomosaic_suite::figure2_pair;

#[test]
#[ignore = "paper-scale: ~1 min in release"]
fn table1_at_paper_scale() {
    let (input, target) = figure2_pair(512);
    for grid in [16usize, 32, 64] {
        let run = |algorithm| {
            let config = MosaicBuilder::new()
                .grid(grid)
                .algorithm(algorithm)
                .backend(Backend::Serial)
                .build();
            generate(&input, &target, &config).unwrap().report
        };
        let optimal = run(Algorithm::Optimal(SolverKind::JonkerVolgenant));
        let serial = run(Algorithm::LocalSearch);
        let parallel = run(Algorithm::ParallelSearch);
        assert!(optimal.total_error <= serial.total_error, "grid {grid}");
        assert!(optimal.total_error <= parallel.total_error, "grid {grid}");
        // The paper's gaps are 1.7-2.3%; synthetic scenes stay below 5%.
        let gap = (serial.total_error - optimal.total_error) as f64 / optimal.total_error as f64;
        assert!(gap < 0.06, "grid {grid}: gap {gap}");
        // §IV-A: k stayed <= 9/8/16 for 16/32/64; allow 2x headroom.
        assert!(serial.sweeps <= 32, "grid {grid}: k = {}", serial.sweeps);
    }
}

#[test]
#[ignore = "paper-scale: ~30 s in release"]
fn parallel_backends_identical_at_s_4096() {
    let (input, target) = figure2_pair(512);
    let mk = |backend| {
        MosaicBuilder::new()
            .grid(64)
            .algorithm(Algorithm::ParallelSearch)
            .backend(backend)
            .build()
    };
    let serial = generate(&input, &target, &mk(Backend::Serial)).unwrap();
    let gpu = generate(&input, &target, &mk(Backend::GpuSim { workers: None })).unwrap();
    assert_eq!(serial.image, gpu.image);
    assert_eq!(serial.report.total_error, gpu.report.total_error);
}
