//! Acceptance test for `generate --trace-out`: the written JSON dump
//! must contain a `generate` root span whose `step1`/`step2`/`step3`
//! children sum to no more than the root's wall time, plus the pipeline
//! metric summaries.
//!
//! The global tracer is process-wide state, so everything that enables
//! it lives in this single test function (integration-test binaries run
//! their tests in parallel threads).

use mosaic_cli::commands::execute;
use mosaic_cli::Command;
use mosaic_image::io::save_pgm;
use mosaic_image::synth::Scene;
use photomosaic::Json;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("mosaic_trace_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn write_scene(name: &str, scene: Scene, size: usize, seed: u64) -> String {
    let path = tmp(name);
    save_pgm(&path, &scene.render(size, seed)).unwrap();
    path.to_string_lossy().into_owned()
}

fn span_field(span: &Json, key: &str) -> u64 {
    span.get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("span missing numeric {key:?}: {span:?}"))
}

#[test]
fn trace_out_dump_nests_step_spans_under_generate() {
    let input = write_scene("trace_in.pgm", Scene::Portrait, 64, 11);
    let target = write_scene("trace_tg.pgm", Scene::Regatta, 64, 12);
    let out = tmp("trace_out.pgm").to_string_lossy().into_owned();
    let trace_path = tmp("trace.json").to_string_lossy().into_owned();

    let config = photomosaic::MosaicBuilder::new()
        .grid(8)
        .backend(photomosaic::Backend::Serial)
        .build();
    let msg = execute(Command::Generate {
        input,
        target,
        out,
        config,
        trace_out: Some(trace_path.clone()),
    })
    .unwrap();
    assert!(msg.contains("wrote trace to"), "{msg}");

    let text = std::fs::read_to_string(&trace_path).unwrap();
    let dump = Json::parse(&text).expect("trace dump parses with the workspace Json reader");

    // Locate the generate root and its direct step children.
    let spans = dump
        .get("trace")
        .and_then(|t| t.get("spans"))
        .and_then(Json::as_arr)
        .expect("trace.spans array");
    let root = spans
        .iter()
        .find(|s| s.get("name").and_then(Json::as_str) == Some("generate"))
        .expect("a generate span");
    let root_id = span_field(root, "id");
    let root_wall = span_field(root, "wall_ns");

    let mut step_sum = 0u64;
    for step in ["step1", "step2", "step3"] {
        let span = spans
            .iter()
            .find(|s| {
                s.get("name").and_then(Json::as_str) == Some(step)
                    && span_field(s, "parent") == root_id
            })
            .unwrap_or_else(|| panic!("no {step} span parented to generate"));
        step_sum += span_field(span, "wall_ns");
    }
    assert!(
        step_sum <= root_wall,
        "steps sum to {step_sum} ns > generate wall {root_wall} ns"
    );
    assert!(step_sum > 0, "steps recorded no time at all");

    // Sweep spans nest under the run too (serial local/parallel search).
    assert!(
        spans
            .iter()
            .any(|s| s.get("name").and_then(Json::as_str) == Some("parallel_search_sweep")),
        "expected at least one sweep span"
    );

    // The metrics half of the dump carries the pipeline histograms.
    let histograms = dump
        .get("metrics")
        .and_then(|m| m.get("histograms"))
        .expect("metrics.histograms object");
    for name in [
        "pipeline_step1_us",
        "pipeline_step2_us",
        "pipeline_step3_us",
    ] {
        let summary = histograms
            .get(name)
            .unwrap_or_else(|| panic!("missing histogram {name}"));
        assert!(
            summary.get("count").and_then(Json::as_u64) >= Some(1),
            "{name} never recorded"
        );
    }
    assert!(
        dump.get("metrics")
            .and_then(|m| m.get("counters"))
            .and_then(|c| c.get("pipeline_runs_total"))
            .and_then(Json::as_u64)
            >= Some(1)
    );
}
