//! Integration tests for the extensions: oriented placement, hierarchical
//! solving, sparse pruning, the blossom solver in the pipeline, and the
//! animated-GIF output path.

use mosaic_assign::SolverKind;
use mosaic_grid::{build_error_matrix, TileLayout, TileMetric};
use mosaic_image::io::write_gif_gray;
use mosaic_image::metrics;
use photomosaic::multires::{hierarchical_with_polish, MultiresConfig};
use photomosaic::optimal::optimal_rearrangement;
use photomosaic::oriented::{generate_oriented, Orientation, OrientedAlgorithm};
use photomosaic::video::VideoMosaicSession;
use photomosaic::{generate, Algorithm, Backend, MosaicBuilder, Preprocess};
use photomosaic_suite::figure2_pair;

#[test]
fn blossom_solver_through_the_full_pipeline() {
    // The paper's literal configuration: the exact rearrangement computed
    // by a general-graph blossom matcher.
    let (input, target) = figure2_pair(96);
    let run = |solver| {
        let config = MosaicBuilder::new()
            .grid(12)
            .algorithm(Algorithm::Optimal(solver))
            .backend(Backend::Serial)
            .build();
        generate(&input, &target, &config).unwrap()
    };
    let blossom = run(SolverKind::Blossom);
    let jv = run(SolverKind::JonkerVolgenant);
    assert_eq!(blossom.report.total_error, jv.report.total_error);
    // Same optimum; placements may differ under ties, so compare errors,
    // not images.
    assert_eq!(
        metrics::sad(&blossom.image, &target),
        metrics::sad(&jv.image, &target)
    );
}

#[test]
fn sparse_match_through_the_full_pipeline() {
    let (input, target) = figure2_pair(96);
    let run = |algorithm| {
        let config = MosaicBuilder::new()
            .grid(12)
            .algorithm(algorithm)
            .backend(Backend::Serial)
            .build();
        generate(&input, &target, &config)
            .unwrap()
            .report
            .total_error
    };
    let optimal = run(Algorithm::Optimal(SolverKind::JonkerVolgenant));
    let full_k = run(Algorithm::SparseMatch { k: 144 });
    let pruned = run(Algorithm::SparseMatch { k: 8 });
    assert_eq!(full_k, optimal, "k = S must be exact");
    assert!(pruned >= optimal);
}

#[test]
fn oriented_beats_or_ties_plain_on_every_experiment_pair() {
    for (name, input, target) in photomosaic_suite::experiment_pairs(64) {
        let layout = TileLayout::with_grid(64, 8).unwrap();
        let matrix = build_error_matrix(&input, &target, layout, TileMetric::Sad).unwrap();
        let plain = optimal_rearrangement(&matrix, SolverKind::JonkerVolgenant).total;
        let oriented = generate_oriented(
            &input,
            &target,
            layout,
            TileMetric::Sad,
            &Orientation::ALL,
            OrientedAlgorithm::Optimal(SolverKind::JonkerVolgenant),
        )
        .unwrap();
        assert!(
            oriented.total_error <= plain,
            "{name}: oriented {} > plain {plain}",
            oriented.total_error
        );
    }
}

#[test]
fn hierarchical_polish_close_to_optimal_on_matched_pairs() {
    let (input, target) = figure2_pair(128);
    let prepared =
        photomosaic::preprocess::preprocess_gray(&input, &target, Preprocess::MatchTarget);
    let layout = TileLayout::with_grid(128, 16).unwrap();
    let config = MultiresConfig {
        leaf_grid: 4,
        metric: TileMetric::Sad,
    };
    let polished = hierarchical_with_polish(&prepared, &target, layout, config).unwrap();
    let matrix = build_error_matrix(&prepared, &target, layout, TileMetric::Sad).unwrap();
    let optimal = optimal_rearrangement(&matrix, SolverKind::JonkerVolgenant).total;
    assert!(
        (polished.total as f64) <= optimal as f64 * 1.05,
        "polished {} vs optimal {optimal}",
        polished.total
    );
}

#[test]
fn video_session_frames_encode_as_animated_gif() {
    let mut session = VideoMosaicSession::new(
        mosaic_image::synth::Scene::Plasma.render(64, 1),
        8,
        TileMetric::Sad,
        Backend::Serial,
        Preprocess::MatchTarget,
    )
    .unwrap();
    let base = mosaic_image::synth::Scene::Regatta.render(64, 2);
    let mut frames = Vec::new();
    for t in 0..3usize {
        let target =
            mosaic_image::Image::from_fn(64, 64, |x, y| base.get((x + 2 * t) % 64, y).unwrap())
                .unwrap();
        let (img, _) = session.next_frame(&target).unwrap();
        frames.push(img);
    }
    let gif = write_gif_gray(&frames, 10).unwrap();
    assert_eq!(&gif[..6], b"GIF89a");
    assert!(gif.windows(11).any(|w| w == b"NETSCAPE2.0"));
    assert_eq!(*gif.last().unwrap(), 0x3B);
}

#[test]
fn oriented_identity_only_equals_plain_pipeline_total() {
    let (input, target) = figure2_pair(64);
    let layout = TileLayout::with_grid(64, 8).unwrap();
    let matrix = build_error_matrix(&input, &target, layout, TileMetric::Sad).unwrap();
    let plain = optimal_rearrangement(&matrix, SolverKind::Hungarian).total;
    let identity_only = generate_oriented(
        &input,
        &target,
        layout,
        TileMetric::Sad,
        &[Orientation::R0],
        OrientedAlgorithm::Optimal(SolverKind::Hungarian),
    )
    .unwrap();
    assert_eq!(identity_only.total_error, plain);
}
