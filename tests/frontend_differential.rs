//! Differential tests: the event-driven (epoll) connection front-end
//! against the threaded oracle (DESIGN §17). Both front-ends run the
//! same fault scripts and must produce byte-identical wire replies and
//! matching hardening counters; the suite closes with the idle-scale
//! soak only the event-driven design can attempt.

#![cfg(all(target_os = "linux", target_arch = "x86_64"))]

use mosaic_image::synth::Scene;
use mosaic_service::fault::{disconnect_mid_frame, stalled_connection_is_closed};
use mosaic_service::protocol::Response;
use mosaic_service::{Client, FrontEnd, Server, ServiceConfig};
use photomosaic::{Backend, ImageSource, JobSpec, Json, MosaicBuilder};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Every scenario runs once per front-end; index 0 is the system under
/// test, index 1 the oracle.
const FRONT_ENDS: [FrontEnd; 2] = [FrontEnd::Epoll, FrontEnd::Threaded];

fn spec(scene: Scene, seed: u64, grid: usize) -> JobSpec {
    JobSpec {
        input: ImageSource::Synth {
            scene,
            size: 32,
            seed,
        },
        target: ImageSource::Synth {
            scene: Scene::Regatta,
            size: 32,
            seed: seed + 100,
        },
        config: MosaicBuilder::new()
            .grid(grid)
            .backend(Backend::Serial)
            .build(),
    }
}

/// Connect, send `payload`, half-close, and collect the connection's
/// entire reply stream until the server closes it.
fn raw_exchange(addr: SocketAddr, payload: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(payload).expect("send payload");
    stream.shutdown(std::net::Shutdown::Write).ok();
    let mut out = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => out.extend_from_slice(&buf[..n]),
            // A reset after the reply (or instead of one) ends the
            // stream just as EOF does for comparison purposes.
            Err(_) => break,
        }
    }
    out
}

fn hardening_counter(client: &mut Client, key: &str) -> u64 {
    let Response::Stats { stats } = client.stats().unwrap() else {
        panic!("expected stats");
    };
    stats
        .get("hardening")
        .and_then(|h| h.get(key))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("missing hardening counter {key:?}"))
}

fn io_loop_stat(client: &mut Client, key: &str) -> u64 {
    let Response::Stats { stats } = client.stats().unwrap() else {
        panic!("expected stats");
    };
    stats
        .get("io_loop")
        .and_then(|h| h.get(key))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("missing io_loop stat {key:?}"))
}

/// Keep connecting until a connection survives a ping — permit release
/// races the reconnect after slots free up.
fn connect_with_retry(addr: SocketAddr) -> Client {
    for _ in 0..200 {
        if let Ok(mut client) = Client::connect(addr) {
            match client.ping() {
                Ok(Response::Pong) => return client,
                _ => std::thread::sleep(Duration::from_millis(5)),
            }
        }
    }
    panic!("server never accepted a new connection after slots freed");
}

/// An oversized frame draws the same reply bytes and the same counter
/// from both front-ends.
#[test]
fn differential_oversized_frame_replies_are_byte_identical() {
    let mut replies = Vec::new();
    for front_end in FRONT_ENDS {
        let server = Server::start(ServiceConfig {
            max_frame_bytes: 1024,
            front_end,
            ..ServiceConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();

        // 4 KiB of garbage with no terminator: trips the limit before
        // any parse, on both framing implementations.
        let reply = raw_exchange(addr, &vec![b'x'; 4096]);

        let mut client = Client::connect(addr).unwrap();
        assert_eq!(
            hardening_counter(&mut client, "frames_too_large"),
            1,
            "{front_end:?}"
        );
        client.shutdown().unwrap();
        server.join();
        replies.push(reply);
    }
    assert!(
        !replies[0].is_empty(),
        "oversized frame must draw a typed reply, not a bare close"
    );
    assert_eq!(replies[0], replies[1], "front-end replies diverge");
}

/// Both front-ends disconnect a slowloris within the io timeout and
/// count it the same way.
#[test]
fn differential_slowloris_is_disconnected_by_both_front_ends() {
    for front_end in FRONT_ENDS {
        let server = Server::start(ServiceConfig {
            io_timeout_ms: 200,
            front_end,
            ..ServiceConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();

        let severed =
            stalled_connection_is_closed(addr, b"{\"op\":\"sub", Duration::from_secs(5)).unwrap();
        assert!(severed, "{front_end:?} kept a stalled connection");

        let mut client = Client::connect(addr).unwrap();
        assert_eq!(
            hardening_counter(&mut client, "connections_timed_out"),
            1,
            "{front_end:?}"
        );
        client.shutdown().unwrap();
        server.join();
    }
}

/// Over-capacity connections draw the same rejection bytes from both
/// front-ends, and both recover once the slot frees.
#[test]
fn differential_flood_rejection_bytes_match_and_both_recover() {
    let mut replies = Vec::new();
    for front_end in FRONT_ENDS {
        let server = Server::start(ServiceConfig {
            max_connections: 1,
            retry_after_ms: 7,
            front_end,
            ..ServiceConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();

        // Hold the only slot with a proven-registered connection.
        let mut holder = Client::connect(addr).unwrap();
        assert!(matches!(holder.ping().unwrap(), Response::Pong));

        replies.push(raw_exchange(addr, b"{\"op\":\"ping\"}\n"));

        drop(holder);
        // Reconnect attempts race the permit release, so retries may be
        // rejected too — the counter is a floor, not an exact count.
        let mut client = connect_with_retry(addr);
        assert!(
            hardening_counter(&mut client, "connections_rejected") >= 1,
            "{front_end:?}"
        );
        client.shutdown().unwrap();
        server.join();
    }
    assert!(!replies[0].is_empty(), "rejection must be answered");
    assert_eq!(replies[0], replies[1], "rejection replies diverge");
}

/// Clients vanishing mid-frame leave both front-ends in the same
/// observable state: no phantom jobs, same counters, still serving.
#[test]
fn differential_mid_frame_disconnects_leave_identical_state() {
    let mut states = Vec::new();
    for front_end in FRONT_ENDS {
        let server = Server::start(ServiceConfig {
            front_end,
            ..ServiceConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();

        for _ in 0..3 {
            disconnect_mid_frame(addr, b"{\"op\":\"submit\",\"spec\":{").unwrap();
        }

        let mut client = Client::connect(addr).unwrap();
        let response = client.submit(&spec(Scene::Drapery, 35, 4)).unwrap();
        assert!(matches!(response, Response::Result { .. }), "{front_end:?}");
        let Response::Stats { stats } = client.stats().unwrap() else {
            panic!("expected stats");
        };
        let jobs = stats.get("jobs").unwrap();
        states.push((
            jobs.get("submitted").and_then(Json::as_u64),
            jobs.get("completed").and_then(Json::as_u64),
            jobs.get("in_flight").and_then(Json::as_u64),
            jobs.get("rejected").and_then(Json::as_u64),
        ));
        client.shutdown().unwrap();
        server.join();
    }
    assert_eq!(states[0], (Some(1), Some(1), Some(0), Some(0)));
    assert_eq!(states[0], states[1], "post-disconnect state diverges");
}

/// The same job spec produces byte-identical result JSON through both
/// front-ends.
#[test]
fn differential_generation_results_are_byte_identical() {
    let mut encodings = Vec::new();
    for front_end in FRONT_ENDS {
        let server = Server::start(ServiceConfig {
            front_end,
            ..ServiceConfig::default()
        })
        .unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let Response::Result { result } = client.submit(&spec(Scene::Portrait, 41, 4)).unwrap()
        else {
            panic!("expected a result");
        };
        // The report embeds wall-clock timings, which can never be
        // byte-identical; the mosaic itself and every deterministic
        // quality figure must be.
        let report = result.get("report").expect("report");
        encodings.push((
            result.get("image").expect("image").encode(),
            result.get("assignment").expect("assignment").encode(),
            report.get("config").expect("config").encode(),
            report.get("total_error").and_then(Json::as_u64),
            report.get("sweeps").and_then(Json::as_u64),
            report.get("swaps").and_then(Json::as_u64),
        ));
        client.shutdown().unwrap();
        server.join();
    }
    assert_eq!(encodings[0], encodings[1], "result JSON diverges");
}

/// The scale target: a thousand idle connections held open by the
/// event-driven front-end with the default worker count, while real
/// work still completes; dropping them releases the gate.
#[test]
fn soak_thousand_idle_connections_event_driven() {
    let server = Server::start(ServiceConfig {
        // Unlimited gate — scale is the point; every other knob
        // (including `workers`) stays at its default.
        max_connections: 0,
        front_end: FrontEnd::Epoll,
        ..ServiceConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();

    let mut idle = Vec::with_capacity(1000);
    for i in 0..1000 {
        match TcpStream::connect(addr) {
            Ok(stream) => idle.push(stream),
            Err(err) => panic!("idle connection {i} failed: {err}"),
        }
    }

    // Accepts may lag the connects; poll the gauge until the loop has
    // registered the whole population (plus this control client).
    let mut client = Client::connect(addr).unwrap();
    let mut open = 0;
    for _ in 0..400 {
        open = io_loop_stat(&mut client, "connections_open");
        if open >= 1001 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(open >= 1001, "only {open} connections registered");

    // Real work still flows with the default worker count.
    let response = client.submit(&spec(Scene::Fur, 47, 4)).unwrap();
    assert!(matches!(response, Response::Result { .. }));
    assert!(
        io_loop_stat(&mut client, "wakeups") > 0,
        "io loop must be doing the accepting"
    );

    // Dropping the idle population releases every gate slot.
    drop(idle);
    let mut open = u64::MAX;
    for _ in 0..400 {
        open = io_loop_stat(&mut client, "connections_open");
        if open <= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(open <= 1, "{open} connections still held after drop");

    client.shutdown().unwrap();
    server.join();
}
