//! The committed benchmark expositions at the workspace root must stay
//! present and well-formed: `BENCH_search.json` is the PR-facing evidence
//! that the persistent pool beats per-call scoped spawns, and CI gates on
//! it (scripts/verify.sh), so a refactor that breaks the bench harness's
//! artifact writing — or a rename of the histogram names downstream
//! tooling keys on — should fail here, not after the numbers go stale.
//!
//! Regenerate with `cargo run --release -p mosaic-bench --bin bench -- \
//! --suite search` (the harness writes `out/` and copies to the root).

use photomosaic::Json;
use std::path::PathBuf;

fn root_artifact(name: &str) -> Json {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{} must be committed at the workspace root: {e}", name));
    Json::parse(&text).unwrap_or_else(|e| panic!("{name} is not valid JSON: {e:?}"))
}

fn histogram<'a>(doc: &'a Json, name: &str) -> &'a Json {
    doc.get("histograms")
        .and_then(|h| h.get(name))
        .unwrap_or_else(|| panic!("exposition lost histogram {name:?}"))
}

fn min_us(doc: &Json, name: &str) -> u64 {
    let value = histogram(doc, name)
        .get("min")
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("histogram {name:?} has no integer min"));
    assert!(value > 0, "{name} recorded a zero-length run");
    value
}

#[test]
fn search_exposition_exists_and_parses() {
    let doc = root_artifact("BENCH_search.json");
    let samples = doc
        .get("counters")
        .and_then(|c| c.get("bench_search_samples_total"))
        .and_then(Json::as_u64)
        .expect("sample counter missing");
    assert!(samples > 0, "exposition holds no samples");
}

#[test]
fn search_exposition_covers_both_strategies_at_both_scales() {
    let doc = root_artifact("BENCH_search.json");
    for strategy in ["pool", "scoped"] {
        for s in [256u32, 1024] {
            for suffix in ["", "_sweep"] {
                let name = format!("bench_search_{strategy}{suffix}_s{s}_t4_us");
                let count = histogram(&doc, &name)
                    .get("count")
                    .and_then(Json::as_u64)
                    .unwrap_or(0);
                assert!(count > 0, "{name} has no recorded samples");
            }
        }
    }
}

#[test]
fn published_numbers_show_the_pool_no_slower_than_scoped_spawns() {
    // The acceptance bar for the pool rewiring: at S = 1024 with four
    // workers, dispatching through the persistent pool must not lose to
    // spawning scoped threads per color group. Compare best-case (min)
    // samples — the robust statistic the table prints, immune to a noisy
    // outlier inflating either side.
    let doc = root_artifact("BENCH_search.json");
    for s in [256u32, 1024] {
        let pool = min_us(&doc, &format!("bench_search_pool_s{s}_t4_us"));
        let scoped = min_us(&doc, &format!("bench_search_scoped_s{s}_t4_us"));
        assert!(
            pool <= scoped,
            "pool dispatch ({pool} us) lost to scoped spawns ({scoped} us) at S={s}"
        );
    }
}

#[test]
fn fleet_exposition_publishes_gateway_and_direct_arms() {
    // The PR-6 evidence: gateway-vs-direct throughput plus warm
    // single-job latency, at 1, 2 and 4 backends. Regenerate with
    // `cargo run --release -p mosaic-bench --bin bench -- --suite fleet`.
    let doc = root_artifact("BENCH_fleet.json");
    let samples = doc
        .get("counters")
        .and_then(|c| c.get("bench_fleet_samples_total"))
        .and_then(Json::as_u64)
        .expect("sample counter missing");
    assert!(samples > 0, "exposition holds no samples");

    let mut names = vec![
        "bench_fleet_direct_throughput_1_us".to_string(),
        "bench_fleet_direct_latency_1_us".to_string(),
    ];
    for n in [1, 2, 4] {
        names.push(format!("bench_fleet_gateway_throughput_{n}_us"));
        names.push(format!("bench_fleet_gateway_latency_{n}_us"));
    }
    for name in &names {
        assert!(min_us(&doc, name) > 0);
        // The latency histograms exist to publish tail behaviour; the
        // p99 field must survive renames of the summary shape.
        let p99 = histogram(&doc, name)
            .get("p99")
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("histogram {name:?} has no integer p99"));
        assert!(p99 >= min_us(&doc, name), "{name}: p99 below min");
    }
}

#[test]
fn tilelib_exposition_shows_pruning_beating_the_dense_solve() {
    // The PR-7 evidence: at every published library size the clustered
    // top-k pruning must solve faster than scoring-plus-solving the
    // dense rectangular instance, and the published pruned-vs-optimal
    // cost ratio must stay close to the dense optimum. Regenerate with
    // `cargo run --release -p mosaic-bench --bin bench -- --suite tilelib`.
    let doc = root_artifact("BENCH_tilelib.json");
    for t in [256u32, 512, 1024] {
        let sparse = min_us(&doc, &format!("bench_tilelib_solve_sparse_t{t}_us"));
        let dense = min_us(&doc, &format!("bench_tilelib_solve_dense_t{t}_us"));
        assert!(
            sparse <= dense,
            "pruned solve ({sparse} us) lost to the dense solve ({dense} us) at T={t}"
        );
        let ratio = min_us(&doc, &format!("bench_tilelib_cost_ratio_permille_t{t}_us"));
        assert!(
            (1000..2000).contains(&ratio),
            "pruned cost ratio {ratio} permille at T={t} is outside [1000, 2000)"
        );
    }
}

#[test]
fn error_matrix_exposition_shows_simd_beating_the_scalar_oracle() {
    // The PR-9 evidence: the runtime-dispatched SIMD kernel layer must
    // not lose to the forced-scalar oracle on the serial builder at
    // either published scale (S = 256 → M = 16 tiles, S = 1024 → M = 8).
    // Equality is allowed: a scalar-only host publishes identical arms.
    // Regenerate with `cargo run --release -p mosaic-bench --bin bench
    // -- --suite error_matrix`.
    let doc = root_artifact("BENCH_error_matrix.json");
    for s in [256u32, 1024] {
        let simd = min_us(&doc, &format!("bench_error_matrix_simd_s{s}_us"));
        let scalar = min_us(&doc, &format!("bench_error_matrix_scalar_s{s}_us"));
        assert!(
            simd <= scalar,
            "dispatched kernel ({simd} us) lost to the scalar oracle ({scalar} us) at S={s}"
        );
    }
}

#[test]
fn every_published_suite_exposition_parses() {
    for suite in [
        "error_matrix",
        "rearrange",
        "solvers",
        "ablations",
        "search",
        "fleet",
        "tilelib",
    ] {
        let doc = root_artifact(&format!("BENCH_{suite}.json"));
        assert!(
            doc.get("histograms").is_some(),
            "BENCH_{suite}.json lost its histograms section"
        );
    }
}
