//! End-to-end integration tests across all crates: the full pipeline on
//! the paper's experiment pairs at laptop scale.

use mosaic_assign::SolverKind;
use mosaic_image::metrics;
use photomosaic::{generate, Algorithm, Backend, MosaicBuilder, Preprocess};
use photomosaic_suite::{experiment_pairs, figure2_pair};

#[test]
fn table1_ordering_holds_on_figure2_pair() {
    // Table I: for every grid size, optimization <= approximation totals,
    // and the serial/parallel approximations land close together.
    let (input, target) = figure2_pair(128);
    for grid in [4usize, 8, 16] {
        let run = |algorithm| {
            let config = MosaicBuilder::new()
                .grid(grid)
                .algorithm(algorithm)
                .backend(Backend::Serial)
                .build();
            generate(&input, &target, &config).unwrap().report
        };
        let optimal = run(Algorithm::Optimal(SolverKind::JonkerVolgenant));
        let serial = run(Algorithm::LocalSearch);
        let parallel = run(Algorithm::ParallelSearch);
        assert!(optimal.total_error <= serial.total_error, "grid {grid}");
        assert!(optimal.total_error <= parallel.total_error, "grid {grid}");
        // §VI: "their total errors differ, but the difference is small".
        let lo = serial.total_error.min(parallel.total_error) as f64;
        let hi = serial.total_error.max(parallel.total_error) as f64;
        assert!(hi / lo.max(1.0) < 1.25, "grid {grid}: {lo} vs {hi}");
    }
}

#[test]
fn error_decreases_as_grid_refines() {
    // Figure 7 / Table I trend: more (smaller) tiles reproduce the target
    // better, so the total error shrinks as S grows.
    let (input, target) = figure2_pair(128);
    let mut previous = u64::MAX;
    for grid in [4usize, 8, 16, 32] {
        let config = MosaicBuilder::new()
            .grid(grid)
            .algorithm(Algorithm::Optimal(SolverKind::JonkerVolgenant))
            .backend(Backend::Serial)
            .build();
        let report = generate(&input, &target, &config).unwrap().report;
        assert!(
            report.total_error < previous,
            "grid {grid}: {} !< {previous}",
            report.total_error
        );
        previous = report.total_error;
    }
}

#[test]
fn all_experiment_pairs_generate_on_all_algorithms() {
    for (name, input, target) in experiment_pairs(64) {
        for algorithm in [
            Algorithm::Optimal(SolverKind::JonkerVolgenant),
            Algorithm::LocalSearch,
            Algorithm::ParallelSearch,
        ] {
            let config = MosaicBuilder::new()
                .grid(8)
                .algorithm(algorithm)
                .backend(Backend::Serial)
                .build();
            let result = generate(&input, &target, &config).unwrap();
            // Reported Eq.-2 total equals the assembled image's SAD.
            assert_eq!(
                result.report.total_error,
                metrics::sad(&result.image, &target),
                "{name} / {algorithm:?}"
            );
        }
    }
}

#[test]
fn sweep_counts_stay_small() {
    // §IV-A: k was at most 9, 8, 16 for the paper's grids; on synthetic
    // pairs at our scale the sweep count must stay of that order.
    let (input, target) = figure2_pair(256);
    for grid in [8usize, 16, 32] {
        let config = MosaicBuilder::new()
            .grid(grid)
            .algorithm(Algorithm::LocalSearch)
            .backend(Backend::Threads(4))
            .build();
        let report = generate(&input, &target, &config).unwrap().report;
        assert!(
            (1..=32).contains(&report.sweeps),
            "grid {grid}: k = {}",
            report.sweeps
        );
    }
}

#[test]
fn histogram_matching_improves_reproduction() {
    // §II's rationale: with very different intensity distributions,
    // matching the input's histogram to the target's lets the
    // rearrangement reproduce the target better.
    let (input, target) = figure2_pair(128);
    let run = |preprocess| {
        let config = MosaicBuilder::new()
            .grid(16)
            .algorithm(Algorithm::Optimal(SolverKind::JonkerVolgenant))
            .backend(Backend::Serial)
            .preprocess(preprocess)
            .build();
        generate(&input, &target, &config)
            .unwrap()
            .report
            .total_error
    };
    let matched = run(Preprocess::MatchTarget);
    let raw = run(Preprocess::None);
    assert!(
        matched < raw,
        "histogram matching should reduce the total error: {matched} vs {raw}"
    );
}

#[test]
fn parallel_and_gpu_backends_reproduce_serial_exactly() {
    let (input, target) = figure2_pair(96);
    let mk = |backend| {
        MosaicBuilder::new()
            .grid(12)
            .algorithm(Algorithm::ParallelSearch)
            .backend(backend)
            .build()
    };
    let serial = generate(&input, &target, &mk(Backend::Serial)).unwrap();
    let threads = generate(&input, &target, &mk(Backend::Threads(4))).unwrap();
    let gpu = generate(&input, &target, &mk(Backend::GpuSim { workers: Some(3) })).unwrap();
    assert_eq!(serial.image, threads.image);
    assert_eq!(serial.image, gpu.image);
    assert_eq!(serial.assignment, gpu.assignment);
}

#[test]
fn mosaic_is_closer_to_target_than_input_is() {
    // The whole point of the method: the rearranged image approximates
    // the target better than the (histogram-matched) input did.
    let (input, target) = figure2_pair(128);
    let config = MosaicBuilder::new()
        .grid(16)
        .algorithm(Algorithm::ParallelSearch)
        .backend(Backend::Serial)
        .build();
    let result = generate(&input, &target, &config).unwrap();
    let prepared =
        photomosaic::preprocess::preprocess_gray(&input, &target, Preprocess::MatchTarget);
    assert!(metrics::sad(&result.image, &target) < metrics::sad(&prepared, &target));
    assert!(metrics::psnr(&result.image, &target) > metrics::psnr(&prepared, &target));
}
