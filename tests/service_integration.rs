//! End-to-end tests of the batch mosaic service: a real server on an
//! ephemeral port, concurrent clients over TCP, error-matrix cache
//! reuse, bounded-queue rejection, and graceful shutdown.

use mosaic_image::synth::Scene;
use mosaic_service::protocol::Response;
use mosaic_service::server::{Server, ServiceConfig};
use mosaic_service::Client;
use photomosaic::{Backend, ImageSource, JobResult, JobSpec, Json, MosaicBuilder};

fn spec(scene: Scene, seed: u64, grid: usize) -> JobSpec {
    JobSpec {
        input: ImageSource::Synth {
            scene,
            size: 32,
            seed,
        },
        target: ImageSource::Synth {
            scene: Scene::Regatta,
            size: 32,
            seed: seed + 100,
        },
        config: MosaicBuilder::new()
            .grid(grid)
            .backend(Backend::Serial)
            .build(),
    }
}

fn decode_result(response: Response) -> JobResult {
    let Response::Result { result } = response else {
        panic!("expected a result, got {response:?}");
    };
    JobResult::from_json(&result).expect("well-formed result")
}

/// Four clients on four threads, each with its own job; every wire
/// result must be bit-identical to running `photomosaic::generate`
/// directly on the same spec.
#[test]
fn concurrent_clients_match_direct_generation() {
    let server = Server::start(ServiceConfig {
        workers: 4,
        ..ServiceConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let specs = [
        spec(Scene::Portrait, 1, 4),
        spec(Scene::Fur, 2, 8),
        spec(Scene::Plasma, 3, 4),
        spec(Scene::Drapery, 4, 8),
    ];

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for spec in &specs {
            handles.push(scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                decode_result(client.submit(spec).unwrap())
            }));
        }
        for (handle, spec) in handles.into_iter().zip(&specs) {
            let remote = handle.join().expect("client thread panicked");
            let (input, target) = spec.resolve().unwrap();
            let direct = photomosaic::generate(&input, &target, &spec.config).unwrap();
            assert_eq!(remote.image, direct.image);
            assert_eq!(remote.assignment, direct.assignment);
            assert_eq!(
                remote.report.get("total_error").and_then(Json::as_u64),
                Some(direct.report.total_error)
            );
        }
    });

    server.shutdown();
    server.join();
}

/// Resubmitting identical content skips Step 2 via the matrix cache —
/// visible per job (`cache_hit`) and in the aggregate stats — without
/// changing the result.
#[test]
fn repeated_input_hits_the_matrix_cache() {
    let server = Server::start(ServiceConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let job = spec(Scene::Checker, 7, 4);

    let first = decode_result(client.submit(&job).unwrap());
    assert_eq!(
        first.report.get("cache_hit").and_then(Json::as_bool),
        Some(false)
    );

    // A job differing only in Step-3 algorithm shares the cached matrix.
    let mut variant = job.clone();
    variant.config.algorithm = photomosaic::Algorithm::LocalSearch;
    let second = decode_result(client.submit(&variant).unwrap());
    assert_eq!(
        second.report.get("cache_hit").and_then(Json::as_bool),
        Some(true)
    );

    let third = decode_result(client.submit(&job).unwrap());
    assert_eq!(
        third.report.get("cache_hit").and_then(Json::as_bool),
        Some(true)
    );
    assert_eq!(third.image, first.image);
    assert_eq!(third.assignment, first.assignment);

    let Response::Stats { stats } = client.stats().unwrap() else {
        panic!("expected stats");
    };
    let cache = stats.get("cache").unwrap();
    assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(2));
    assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(1));

    // The same observations surface as a queue-wait histogram in the
    // JSON stats and as Prometheus text via the metrics op.
    let wait = stats.get("queue").unwrap().get("wait_us").unwrap();
    assert_eq!(wait.get("count").and_then(Json::as_u64), Some(3));
    assert!(wait.get("p99").and_then(Json::as_u64).is_some());

    let Response::Metrics { text } = client.metrics().unwrap() else {
        panic!("expected metrics text");
    };
    assert!(text.contains("# TYPE service_cache_hits_total counter"));
    assert!(text.contains("service_cache_hits_total 2\n"));
    assert!(text.contains("service_cache_misses_total 1\n"));
    assert!(text.contains("# TYPE service_queue_wait_us histogram"));
    assert!(text.contains("service_queue_wait_us_bucket{le=\"+Inf\"} 3\n"));
    assert!(text.contains("service_queue_wait_us_count 3\n"));
    assert!(text.contains("service_jobs_completed_total 3\n"));

    client.shutdown().unwrap();
    server.join();
}

/// With one worker and a one-slot queue, a simultaneous flood must see
/// `rejected` responses carrying the configured retry-after hint, while
/// retrying clients still complete every job.
#[test]
fn full_queue_rejects_with_retry_after() {
    let server = Server::start(ServiceConfig {
        workers: 1,
        queue_capacity: 1,
        retry_after_ms: 5,
        ..ServiceConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();

    // All clients connect first and release together, so eight
    // submissions hit the one-slot queue within microseconds of each
    // other: at most one executing + one queued, the rest rejected.
    let barrier = std::sync::Barrier::new(8);
    let rejected: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    barrier.wait();
                    // Distinct seeds defeat the cache so every job costs
                    // real work and the queue actually backs up.
                    let job = spec(Scene::Plasma, 1000 + i, 8);
                    let (response, rejections) = client.submit_with_retry(&job, 200).unwrap();
                    match response {
                        Response::Result { .. } => rejections,
                        Response::Rejected { retry_after_ms } => {
                            assert_eq!(retry_after_ms, 5);
                            panic!("job starved even after 200 attempts");
                        }
                        other => panic!("unexpected response {other:?}"),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .sum()
    });
    assert!(
        rejected > 0,
        "8 simultaneous submissions into a 1-slot queue never saw backpressure"
    );

    let mut client = Client::connect(addr).unwrap();
    let Response::Stats { stats } = client.stats().unwrap() else {
        panic!("expected stats");
    };
    let jobs = stats.get("jobs").unwrap();
    assert_eq!(jobs.get("completed").and_then(Json::as_u64), Some(8));
    assert_eq!(
        jobs.get("rejected").and_then(Json::as_u64),
        Some(rejected),
        "server-side rejection count must match what clients observed"
    );

    client.shutdown().unwrap();
    server.join();
}

/// Graceful shutdown: the control request stops intake, already-accepted
/// work drains, and `join` returns instead of hanging.
#[test]
fn graceful_shutdown_drains_and_joins() {
    let server = Server::start(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();

    // Land some completed work first so the drain has history behind it.
    let mut client = Client::connect(addr).unwrap();
    decode_result(client.submit(&spec(Scene::Portrait, 21, 4)).unwrap());

    assert_eq!(client.shutdown().unwrap(), Response::ShuttingDown);
    // Submissions after shutdown are refused, not dropped silently.
    match client.submit(&spec(Scene::Portrait, 22, 4)) {
        Ok(Response::Error { message }) => assert!(message.contains("shutting down")),
        other => panic!("expected a shutdown error, got {other:?}"),
    }
    server.join();

    // The listener is really gone once join returns.
    assert!(Client::connect(addr).is_err());
}
