//! End-to-end tests of the batch mosaic service: a real server on an
//! ephemeral port, concurrent clients over TCP, error-matrix cache
//! reuse, bounded-queue rejection, and graceful shutdown.

use mosaic_image::synth::Scene;
use mosaic_service::fault::{
    disconnect_mid_frame, probe_oversized_frame, stalled_connection_is_closed,
};
use mosaic_service::protocol::Response;
use mosaic_service::server::{Server, ServiceConfig};
use mosaic_service::{Client, FaultPlan};
use photomosaic::{Backend, ImageSource, JobResult, JobSpec, Json, MosaicBuilder};
use std::time::Duration;

fn spec(scene: Scene, seed: u64, grid: usize) -> JobSpec {
    JobSpec {
        input: ImageSource::Synth {
            scene,
            size: 32,
            seed,
        },
        target: ImageSource::Synth {
            scene: Scene::Regatta,
            size: 32,
            seed: seed + 100,
        },
        config: MosaicBuilder::new()
            .grid(grid)
            .backend(Backend::Serial)
            .build(),
    }
}

fn decode_result(response: Response) -> JobResult {
    let Response::Result { result } = response else {
        panic!("expected a result, got {response:?}");
    };
    JobResult::from_json(&result).expect("well-formed result")
}

/// Four clients on four threads, each with its own job; every wire
/// result must be bit-identical to running `photomosaic::generate`
/// directly on the same spec.
#[test]
fn concurrent_clients_match_direct_generation() {
    let server = Server::start(ServiceConfig {
        workers: 4,
        ..ServiceConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let specs = [
        spec(Scene::Portrait, 1, 4),
        spec(Scene::Fur, 2, 8),
        spec(Scene::Plasma, 3, 4),
        spec(Scene::Drapery, 4, 8),
    ];

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for spec in &specs {
            handles.push(scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                decode_result(client.submit(spec).unwrap())
            }));
        }
        for (handle, spec) in handles.into_iter().zip(&specs) {
            let remote = handle.join().expect("client thread panicked");
            let (input, target) = spec.resolve().unwrap();
            let direct = photomosaic::generate(&input, &target, &spec.config).unwrap();
            assert_eq!(remote.image, direct.image);
            assert_eq!(remote.assignment, direct.assignment);
            assert_eq!(
                remote.report.get("total_error").and_then(Json::as_u64),
                Some(direct.report.total_error)
            );
        }
    });

    server.shutdown();
    server.join();
}

/// Resubmitting identical content skips Step 2 via the matrix cache —
/// visible per job (`cache_hit`) and in the aggregate stats — without
/// changing the result.
#[test]
fn repeated_input_hits_the_matrix_cache() {
    let server = Server::start(ServiceConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let job = spec(Scene::Checker, 7, 4);

    let first = decode_result(client.submit(&job).unwrap());
    assert_eq!(
        first.report.get("cache_hit").and_then(Json::as_bool),
        Some(false)
    );

    // A job differing only in Step-3 algorithm shares the cached matrix.
    let mut variant = job.clone();
    variant.config.algorithm = photomosaic::Algorithm::LocalSearch;
    let second = decode_result(client.submit(&variant).unwrap());
    assert_eq!(
        second.report.get("cache_hit").and_then(Json::as_bool),
        Some(true)
    );

    let third = decode_result(client.submit(&job).unwrap());
    assert_eq!(
        third.report.get("cache_hit").and_then(Json::as_bool),
        Some(true)
    );
    assert_eq!(third.image, first.image);
    assert_eq!(third.assignment, first.assignment);

    let Response::Stats { stats } = client.stats().unwrap() else {
        panic!("expected stats");
    };
    let cache = stats.get("cache").unwrap();
    assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(2));
    assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(1));

    // The same observations surface as a queue-wait histogram in the
    // JSON stats and as Prometheus text via the metrics op.
    let wait = stats.get("queue").unwrap().get("wait_us").unwrap();
    assert_eq!(wait.get("count").and_then(Json::as_u64), Some(3));
    assert!(wait.get("p99").and_then(Json::as_u64).is_some());

    let Response::Metrics { text } = client.metrics().unwrap() else {
        panic!("expected metrics text");
    };
    assert!(text.contains("# TYPE service_cache_hits_total counter"));
    assert!(text.contains("service_cache_hits_total 2\n"));
    assert!(text.contains("service_cache_misses_total 1\n"));
    assert!(text.contains("# TYPE service_queue_wait_us histogram"));
    assert!(text.contains("service_queue_wait_us_bucket{le=\"+Inf\"} 3\n"));
    assert!(text.contains("service_queue_wait_us_count 3\n"));
    assert!(text.contains("service_jobs_completed_total 3\n"));

    client.shutdown().unwrap();
    server.join();
}

/// With one worker and a one-slot queue, a simultaneous flood must see
/// `rejected` responses carrying the configured retry-after hint, while
/// retrying clients still complete every job.
#[test]
fn full_queue_rejects_with_retry_after() {
    let server = Server::start(ServiceConfig {
        workers: 1,
        queue_capacity: 1,
        retry_after_ms: 5,
        ..ServiceConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();

    // All clients connect first and release together, so eight
    // submissions hit the one-slot queue within microseconds of each
    // other: at most one executing + one queued, the rest rejected.
    let barrier = std::sync::Barrier::new(8);
    let rejected: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    barrier.wait();
                    // Distinct seeds defeat the cache so every job costs
                    // real work and the queue actually backs up.
                    let job = spec(Scene::Plasma, 1000 + i, 8);
                    let (response, rejections) = client.submit_with_retry(&job, 200).unwrap();
                    match response {
                        Response::Result { .. } => rejections,
                        Response::Rejected { retry_after_ms } => {
                            assert_eq!(retry_after_ms, 5);
                            panic!("job starved even after 200 attempts");
                        }
                        other => panic!("unexpected response {other:?}"),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .sum()
    });
    assert!(
        rejected > 0,
        "8 simultaneous submissions into a 1-slot queue never saw backpressure"
    );

    let mut client = Client::connect(addr).unwrap();
    let Response::Stats { stats } = client.stats().unwrap() else {
        panic!("expected stats");
    };
    let jobs = stats.get("jobs").unwrap();
    assert_eq!(jobs.get("completed").and_then(Json::as_u64), Some(8));
    assert_eq!(
        jobs.get("rejected").and_then(Json::as_u64),
        Some(rejected),
        "server-side rejection count must match what clients observed"
    );

    client.shutdown().unwrap();
    server.join();
}

/// Fetch the `hardening` counter object from a live server's stats.
fn hardening_counter(client: &mut Client, key: &str) -> u64 {
    let Response::Stats { stats } = client.stats().unwrap() else {
        panic!("expected stats");
    };
    stats
        .get("hardening")
        .and_then(|h| h.get(key))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("missing hardening counter {key:?}"))
}

/// A frame past `max_frame_bytes` draws the typed `frame_too_large`
/// response (echoing the limit), bumps the counter, and never makes the
/// server buffer the oversized line.
#[test]
fn fault_oversized_frame_draws_a_typed_rejection() {
    let server = Server::start(ServiceConfig {
        max_frame_bytes: 1024,
        ..ServiceConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();

    // 4 KiB against a 1 KiB limit: small enough that the server's reader
    // buffers the whole attack (no RST racing the response), large
    // enough to trip the limit.
    let response = probe_oversized_frame(addr, 4096).unwrap();
    assert_eq!(
        response,
        Some(Response::FrameTooLarge {
            max_frame_bytes: 1024
        })
    );

    let mut client = Client::connect(addr).unwrap();
    assert_eq!(hardening_counter(&mut client, "frames_too_large"), 1);
    // The connection that tripped the limit is gone, but the server
    // still serves well-formed clients.
    decode_result(client.submit(&spec(Scene::Portrait, 31, 4)).unwrap());
    client.shutdown().unwrap();
    server.join();
}

/// A slowloris client — connect, send half a frame, go silent — is
/// disconnected once the socket read deadline expires, and the timeout
/// is counted.
#[test]
fn fault_slowloris_is_disconnected_within_the_io_timeout() {
    let server = Server::start(ServiceConfig {
        io_timeout_ms: 200,
        ..ServiceConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();

    let severed =
        stalled_connection_is_closed(addr, b"{\"op\":\"sub", Duration::from_secs(5)).unwrap();
    assert!(
        severed,
        "server kept a stalled connection past its deadline"
    );

    let mut client = Client::connect(addr).unwrap();
    assert_eq!(hardening_counter(&mut client, "connections_timed_out"), 1);
    client.shutdown().unwrap();
    server.join();
}

/// With `max_connections = 2`, a third simultaneous connection is
/// answered with the standard `rejected` backpressure shape and dropped;
/// once a slot frees, new connections are accepted again.
#[test]
fn fault_connection_flood_beyond_the_cap_is_rejected_then_recovers() {
    let server = Server::start(ServiceConfig {
        max_connections: 2,
        retry_after_ms: 7,
        ..ServiceConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();

    let first = Client::connect(addr).unwrap();
    let second = Client::connect(addr).unwrap();
    // Third connection: the accept loop answers `rejected` without
    // spawning a handler, so even a ping comes back as backpressure.
    let mut third = Client::connect(addr).unwrap();
    match third.ping() {
        Ok(Response::Rejected { retry_after_ms }) => assert_eq!(retry_after_ms, 7),
        other => panic!("expected rejection at the connection cap, got {other:?}"),
    }

    // Free both slots; handlers notice EOF and release their permits.
    drop(first);
    drop(second);
    let mut client = connect_with_retry(addr);
    assert_eq!(hardening_counter(&mut client, "connections_rejected"), 1);
    decode_result(client.submit(&spec(Scene::Fur, 33, 4)).unwrap());
    client.shutdown().unwrap();
    server.join();
}

/// When arming the write deadline on an over-capacity socket fails, the
/// server must drop that socket unanswered rather than risk a blocking
/// courtesy write — and the failure must not wedge the accept path.
#[test]
fn fault_reject_sockopt_failure_drops_socket_without_wedging_accept() {
    let server = Server::start(ServiceConfig {
        max_connections: 1,
        retry_after_ms: 9,
        faults: FaultPlan::fail_reject_sockopt(1),
        ..ServiceConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();

    let first = Client::connect(addr).unwrap();
    // Second connection: over capacity AND the injected setsockopt
    // failure fires — the socket is dropped without the courtesy
    // `rejected` line, so the ping sees EOF (or a reset).
    let mut second = Client::connect(addr).unwrap();
    assert!(
        second.ping().is_err(),
        "socket with a failed write deadline must be dropped unanswered"
    );
    // Third connection: the budget is spent, so the normal armed-write
    // rejection shape is back. The accept path never wedged.
    let mut third = Client::connect(addr).unwrap();
    match third.ping() {
        Ok(Response::Rejected { retry_after_ms }) => assert_eq!(retry_after_ms, 9),
        other => panic!("expected rejection at the connection cap, got {other:?}"),
    }

    // Both over-capacity sockets count as rejected, answered or not.
    drop(first);
    let mut client = connect_with_retry(addr);
    assert_eq!(hardening_counter(&mut client, "connections_rejected"), 2);
    client.shutdown().unwrap();
    server.join();
}

/// Keep connecting until a connection survives a ping — used after
/// freeing connection slots, where permit release races the reconnect.
fn connect_with_retry(addr: std::net::SocketAddr) -> Client {
    for _ in 0..200 {
        if let Ok(mut client) = Client::connect(addr) {
            match client.ping() {
                Ok(Response::Pong) => return client,
                _ => std::thread::sleep(Duration::from_millis(5)),
            }
        }
    }
    panic!("server never accepted a new connection after slots freed");
}

/// A client that vanishes mid-frame must not wedge anything: the
/// handler unwinds, and later well-formed traffic sees a consistent
/// queue and metrics.
#[test]
fn fault_disconnect_mid_frame_leaves_the_server_consistent() {
    let server = Server::start(ServiceConfig::default()).unwrap();
    let addr = server.local_addr();

    for _ in 0..3 {
        disconnect_mid_frame(addr, b"{\"op\":\"submit\",\"spec\":{").unwrap();
    }

    let mut client = Client::connect(addr).unwrap();
    decode_result(client.submit(&spec(Scene::Drapery, 35, 4)).unwrap());
    let Response::Stats { stats } = client.stats().unwrap() else {
        panic!("expected stats");
    };
    let jobs = stats.get("jobs").unwrap();
    // The abandoned half-frames never became jobs; the real one did.
    assert_eq!(jobs.get("submitted").and_then(Json::as_u64), Some(1));
    assert_eq!(jobs.get("completed").and_then(Json::as_u64), Some(1));
    assert_eq!(jobs.get("in_flight").and_then(Json::as_u64), Some(0));
    client.shutdown().unwrap();
    server.join();
}

/// A worker wedged past the per-job deadline returns the typed
/// `deadline_exceeded` response while the other worker keeps draining
/// jobs to completion.
#[test]
fn fault_stalled_worker_hits_the_deadline_while_others_drain() {
    let server = Server::start(ServiceConfig {
        workers: 2,
        job_deadline_ms: 60,
        faults: FaultPlan::stall_first_jobs(1, 300),
        ..ServiceConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();

    // Two jobs, two workers: exactly one claims the injected stall and
    // blows its deadline; the other must complete normally.
    let responses: Vec<Response> = std::thread::scope(|scope| {
        (0..2)
            .map(|i| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    client.submit(&spec(Scene::Plasma, 40 + i, 4)).unwrap()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let cancelled = responses
        .iter()
        .filter(|r| matches!(r, Response::DeadlineExceeded { deadline_ms: 60 }))
        .count();
    let completed = responses
        .iter()
        .filter(|r| matches!(r, Response::Result { .. }))
        .count();
    assert_eq!(
        (cancelled, completed),
        (1, 1),
        "expected one cancellation and one result, got {responses:?}"
    );

    let mut client = Client::connect(addr).unwrap();
    assert_eq!(hardening_counter(&mut client, "deadline_exceeded"), 1);
    let Response::Stats { stats } = client.stats().unwrap() else {
        panic!("expected stats");
    };
    let jobs = stats.get("jobs").unwrap();
    assert_eq!(jobs.get("completed").and_then(Json::as_u64), Some(1));
    assert_eq!(jobs.get("in_flight").and_then(Json::as_u64), Some(0));
    client.shutdown().unwrap();
    server.join();
}

/// Graceful shutdown still drains accepted work when workers are being
/// stalled by injected faults: every in-flight job gets a real answer
/// and `join` returns.
#[test]
fn fault_shutdown_drains_stalled_workers() {
    let server = Server::start(ServiceConfig {
        workers: 2,
        // Stalls are long enough to overlap the shutdown, short enough
        // to stay far inside the (default) job deadline.
        faults: FaultPlan::stall_first_jobs(2, 150),
        ..ServiceConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();

    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..2)
            .map(|i| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    client.submit(&spec(Scene::Checker, 50 + i, 4)).unwrap()
                })
            })
            .collect();
        // Let both jobs reach their workers, then shut down mid-stall.
        std::thread::sleep(Duration::from_millis(40));
        let mut control = Client::connect(addr).unwrap();
        assert_eq!(control.shutdown().unwrap(), Response::ShuttingDown);
        for handle in workers {
            let response = handle.join().expect("client thread panicked");
            assert!(
                matches!(response, Response::Result { .. }),
                "stalled job dropped during shutdown: {response:?}"
            );
        }
    });
    server.join();
}

/// Graceful shutdown: the control request stops intake, already-accepted
/// work drains, and `join` returns instead of hanging.
#[test]
fn graceful_shutdown_drains_and_joins() {
    let server = Server::start(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();

    // Land some completed work first so the drain has history behind it.
    let mut client = Client::connect(addr).unwrap();
    decode_result(client.submit(&spec(Scene::Portrait, 21, 4)).unwrap());

    assert_eq!(client.shutdown().unwrap(), Response::ShuttingDown);
    // Submissions after shutdown are refused, not dropped silently.
    match client.submit(&spec(Scene::Portrait, 22, 4)) {
        Ok(Response::Error { message }) => assert!(message.contains("shutting down")),
        other => panic!("expected a shutdown error, got {other:?}"),
    }
    server.join();

    // The listener is really gone once join returns.
    assert!(Client::connect(addr).is_err());
}
